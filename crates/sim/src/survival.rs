//! Adversary survival analysis: how long until a determined cheater is
//! caught?
//!
//! The paper's first caveat (Section 1): *"a determined adversary will
//! succeed in disrupting the system if she makes a sufficient number of
//! attempts... It is highly likely, however, that in making these attempts
//! she will be detected, alerting the supervisor"*.  This module makes
//! that argument quantitative.
//!
//! Each cheat attempt is detected independently with probability
//! `P_eff = min_k P_{k,p}` (the scheme's effective detection), so the
//! number of *successful* cheats before first detection is geometric:
//!
//! * `P(caught within a attempts) = 1 − (1−P_eff)^a`;
//! * `E[successes before detection] = (1−P_eff)/P_eff`;
//! * the supervisor can bound the expected damage of any adversary by
//!   tuning ε.
//!
//! [`survival_experiment`] validates the geometric law on the full
//! campaign engine: the adversary cheats task after task (on the holdings
//! her strategy selects) until the supervisor's comparison or a ringer
//! catches her, at which point her accounts are banned (the "reactive
//! measure").

use crate::adversary::AdversaryModel;
use crate::engine::CampaignConfig;
use crate::outcome::CampaignOutcome;
use crate::task::{expand_plan, TaskSpec};
use redundancy_core::RealizedPlan;
use redundancy_stats::parallel::{run_trials, TrialConfig};
use redundancy_stats::samplers::{sample_binomial, sample_hypergeometric};
use redundancy_stats::{DeterministicRng, RunningMoments};

/// Closed-form expected number of undetected cheats before first detection
/// when each attempt is caught with probability `p_eff`.
///
/// ```
/// use redundancy_sim::survival::expected_free_cheats;
/// // At ε = 0.75 a cheater gets only a third of a free cheat on average.
/// assert!((expected_free_cheats(0.75) - 1.0 / 3.0).abs() < 1e-12);
/// assert!(expected_free_cheats(0.0).is_infinite()); // simple redundancy
/// ```
pub fn expected_free_cheats(p_eff: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_eff),
        "detection probability {p_eff} outside [0,1]"
    );
    if p_eff == 0.0 {
        f64::INFINITY
    } else {
        (1.0 - p_eff) / p_eff
    }
}

/// Closed-form probability the adversary is caught within `attempts`
/// cheat attempts.
pub fn p_caught_within(p_eff: f64, attempts: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p_eff));
    1.0 - (1.0 - p_eff).powi(attempts.min(i32::MAX as u64) as i32)
}

/// Aggregated survival statistics from simulated careers.
#[derive(Debug, Clone, Default)]
pub struct SurvivalOutcome {
    /// Undetected cheats completed before the first detection, per career
    /// (careers that were never caught contribute their full cheat count
    /// and are tallied in `never_caught`).
    pub free_cheats: RunningMoments,
    /// Careers in which the adversary exhausted the campaign uncaught.
    pub never_caught: u64,
    /// Total simulated careers.
    pub careers: u64,
}

impl SurvivalOutcome {
    /// Merge another outcome (order-insensitive).
    pub fn merge(&mut self, other: &SurvivalOutcome) {
        self.free_cheats.merge(&other.free_cheats);
        self.never_caught += other.never_caught;
        self.careers += other.careers;
    }
}

/// Simulate one adversary "career": she works through the campaign's tasks
/// in random order, cheating per her strategy, until first detection (ban)
/// or campaign end.  Returns (successful cheats before detection, caught?).
pub fn career(
    tasks: &[TaskSpec],
    config: &CampaignConfig,
    rng: &mut DeterministicRng,
) -> (u64, bool) {
    let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
    rng.shuffle(&mut order);
    let mut free = 0u64;
    for idx in order {
        let task = &tasks[idx as usize];
        let mult = task.multiplicity as u64;
        let held = match config.adversary {
            AdversaryModel::AssignmentFraction { p } => sample_binomial(rng, mult, p),
            AdversaryModel::SybilAccounts { total, adversary } => {
                sample_hypergeometric(rng, total as u64, adversary as u64, mult.min(total as u64))
            }
        } as u32;
        if !config.strategy.cheats_on(held) {
            continue;
        }
        // Detected iff some copy is honest or the task is precomputed.
        let detected = task.precomputed || u64::from(held) < mult;
        if detected {
            return (free, true);
        }
        free += 1;
    }
    (free, false)
}

/// Monte-Carlo survival experiment over `careers` independent adversary
/// careers, with auto-detected thread count.
pub fn survival_experiment(
    plan: &RealizedPlan,
    config: &CampaignConfig,
    careers: u64,
    seed: u64,
) -> SurvivalOutcome {
    survival_experiment_with(plan, config, careers, seed, 0)
}

/// As [`survival_experiment`] but pinned to `threads` worker threads
/// (0 = auto).  Sweep drivers evaluating several scenarios concurrently
/// pass each scenario its share of the thread budget.  Careers are chunked
/// and seeded identically at every thread count.
pub fn survival_experiment_with(
    plan: &RealizedPlan,
    config: &CampaignConfig,
    careers: u64,
    seed: u64,
    threads: usize,
) -> SurvivalOutcome {
    config.validate().expect("invalid campaign configuration");
    let tasks = expand_plan(plan);
    let trial_cfg = TrialConfig {
        trials: careers,
        chunk_size: TrialConfig::CAMPAIGN_CHUNK_SIZE,
        threads,
        seed,
        sampler: Default::default(),
    };
    run_trials(
        &trial_cfg,
        |rng, _i, acc: &mut SurvivalOutcome| {
            let (free, caught) = career(&tasks, config, rng);
            acc.free_cheats.push(free as f64);
            if !caught {
                acc.never_caught += 1;
            }
            acc.careers += 1;
        },
        |a, b| a.merge(&b),
    )
}

/// Convenience: the effective per-attempt detection probability a plan
/// offers against an `AtLeast {1}` cheater at proportion `p` — the
/// geometric parameter of the career law.
pub fn effective_attempt_detection(plan: &RealizedPlan, p: f64) -> f64 {
    plan.effective_detection(p)
        .expect("valid adversary proportion")
}

/// Bookkeeping helper: outcome of continuing to cheat across `rounds`
/// successive campaigns with per-campaign outcome `per_campaign`.
pub fn compound_detection(per_campaign: &CampaignOutcome, rounds: u32) -> f64 {
    match per_campaign.overall_detection_rate() {
        Some(rate) => 1.0 - (1.0 - rate).powi(rounds as i32),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::CheatStrategy;
    use crate::supervisor::VerificationPolicy;

    fn plan() -> RealizedPlan {
        RealizedPlan::balanced(20_000, 0.5).unwrap()
    }

    fn config(p: f64) -> CampaignConfig {
        CampaignConfig {
            adversary: AdversaryModel::AssignmentFraction { p },
            strategy: CheatStrategy::AtLeast { min_copies: 1 },
            honest_error_rate: 0.0,
            policy: VerificationPolicy::Unanimous,
        }
    }

    #[test]
    fn closed_forms() {
        assert_eq!(expected_free_cheats(0.5), 1.0);
        assert_eq!(expected_free_cheats(1.0), 0.0);
        assert_eq!(expected_free_cheats(0.0), f64::INFINITY);
        assert!((p_caught_within(0.5, 3) - 0.875).abs() < 1e-12);
        assert_eq!(p_caught_within(0.5, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn closed_form_validates() {
        expected_free_cheats(1.5);
    }

    #[test]
    fn careers_match_geometric_law() {
        // With per-attempt detection P_eff, mean free cheats = (1-P)/P.
        let plan = plan();
        let p = 0.1;
        let cfg = config(p);
        let out = survival_experiment(&plan, &cfg, 1_500, 99);
        assert_eq!(out.careers, 1_500);
        let p_eff = 1.0 - 0.5f64.powf(1.0 - p); // Proposition 3
        let expect = expected_free_cheats(p_eff);
        let mean = out.free_cheats.mean();
        let se = out.free_cheats.standard_error();
        assert!(
            (mean - expect).abs() < 4.0 * se + 0.05,
            "mean {mean} vs geometric {expect} (se {se})"
        );
        // At N = 20,000 with thousands of attackable tasks, careers that
        // never get caught are vanishingly rare.
        assert!(out.never_caught <= 2, "{}", out.never_caught);
    }

    #[test]
    fn higher_epsilon_means_shorter_careers() {
        let weak = survival_experiment(
            &RealizedPlan::balanced(10_000, 0.25).unwrap(),
            &config(0.05),
            400,
            7,
        );
        let strong = survival_experiment(
            &RealizedPlan::balanced(10_000, 0.9).unwrap(),
            &config(0.05),
            400,
            7,
        );
        assert!(
            strong.free_cheats.mean() < weak.free_cheats.mean(),
            "strong {} vs weak {}",
            strong.free_cheats.mean(),
            weak.free_cheats.mean()
        );
    }

    #[test]
    fn simple_redundancy_careers_never_end() {
        // Pair collusion is invisible: the adversary finishes the campaign
        // uncaught every time.
        let plan = RealizedPlan::k_fold(2_000, 2, 0.5).unwrap();
        let cfg = CampaignConfig {
            strategy: CheatStrategy::ExactTuples { k: 2 },
            ..config(0.2)
        };
        let out = survival_experiment(&plan, &cfg, 100, 3);
        assert_eq!(out.never_caught, 100);
        assert!(out.free_cheats.mean() > 10.0);
    }

    #[test]
    fn determinism() {
        let plan = plan();
        let a = survival_experiment(&plan, &config(0.1), 200, 5);
        let b = survival_experiment(&plan, &config(0.1), 200, 5);
        assert_eq!(a.free_cheats.mean(), b.free_cheats.mean());
        assert_eq!(a.never_caught, b.never_caught);
    }

    #[test]
    fn compound_detection_accumulates() {
        let mut o = CampaignOutcome::default();
        o.record_cheat(1, true);
        o.record_cheat(1, false);
        // 0.5 per campaign → 0.875 across three campaigns.
        assert!((compound_detection(&o, 3) - 0.875).abs() < 1e-12);
        assert_eq!(compound_detection(&CampaignOutcome::default(), 5), 0.0);
    }

    #[test]
    fn effective_attempt_detection_matches_plan() {
        let plan = plan();
        let direct = plan.effective_detection(0.1).unwrap();
        assert_eq!(effective_attempt_detection(&plan, 0.1), direct);
    }
}
