//! The global colluding adversary: control model and cheating strategy.
//!
//! The paper's adversary (Section 2) is *global* and *intelligent*: she
//! knows the distribution algorithm and the protection measures, controls
//! many participants, and colludes perfectly across them — but she does
//! not know the multiplicity of the tasks she holds, only how many copies
//! of each landed in her hands.

/// How the adversary's share of the platform is modeled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryModel {
    /// Each assignment independently lands with the adversary with
    /// probability `p` — the exact model behind the paper's `P_{k,p}`.
    AssignmentFraction {
        /// Adversary's proportion of assignments, `0 ≤ p < 1`.
        p: f64,
    },
    /// The adversary owns `adversary` of `total` equal-throughput accounts
    /// (the Sybil picture from the paper's introduction); assignments are
    /// dealt to accounts uniformly at random.
    SybilAccounts {
        /// Pool size.
        total: u32,
        /// Accounts the adversary registered.
        adversary: u32,
    },
}

impl AdversaryModel {
    /// The (expected) proportion of assignments the adversary controls.
    pub fn proportion(&self) -> f64 {
        match *self {
            AdversaryModel::AssignmentFraction { p } => p,
            AdversaryModel::SybilAccounts { total, adversary } => adversary as f64 / total as f64,
        }
    }

    /// Validate the model's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AdversaryModel::AssignmentFraction { p } => {
                if p.is_finite() && (0.0..1.0).contains(&p) {
                    Ok(())
                } else {
                    Err(format!("assignment fraction p = {p} outside [0, 1)"))
                }
            }
            AdversaryModel::SybilAccounts { total, adversary } => {
                if total == 0 {
                    Err("participant pool is empty".into())
                } else if adversary >= total {
                    Err(format!(
                        "adversary owns {adversary} of {total} accounts — nobody honest remains"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Which of her tasks the adversary attacks, given only the number of
/// copies `k` she holds of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheatStrategy {
    /// Never cheat (honest baseline / false-positive calibration).
    Never,
    /// Cheat on every task she holds at least one copy of (the naive
    /// adversary; heavily punished by every scheme).
    Always,
    /// Cheat exactly on the tasks of which she holds `k` copies — the
    /// conditional experiment behind `P_{k,p}`.
    ExactTuples {
        /// The tuple size to attack.
        k: u32,
    },
    /// Cheat on every task of which she holds at least `min_copies`
    /// copies (an adversary betting that many copies ⇒ full control).
    AtLeast {
        /// Minimum holding to trigger an attack.
        min_copies: u32,
    },
    /// The intelligent adversary of Section 3.1: attack the tuple size
    /// with the lowest detection probability under the announced scheme
    /// (for Golle–Stubblebine that is always `k = 1`; for Balanced all
    /// sizes are equally protected so the choice is irrelevant).
    WeakestTuple {
        /// The tuple size the adversary computed to be weakest.
        k: u32,
    },
}

impl CheatStrategy {
    /// Does the adversary cheat on a task of which she holds `copies`?
    #[inline]
    pub fn cheats_on(&self, copies: u32) -> bool {
        if copies == 0 {
            return false;
        }
        match *self {
            CheatStrategy::Never => false,
            CheatStrategy::Always => true,
            CheatStrategy::ExactTuples { k } | CheatStrategy::WeakestTuple { k } => copies == k,
            CheatStrategy::AtLeast { min_copies } => copies >= min_copies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_proportions() {
        assert_eq!(
            AdversaryModel::AssignmentFraction { p: 0.25 }.proportion(),
            0.25
        );
        assert_eq!(
            AdversaryModel::SybilAccounts {
                total: 200,
                adversary: 50
            }
            .proportion(),
            0.25
        );
    }

    #[test]
    fn model_validation() {
        assert!(AdversaryModel::AssignmentFraction { p: 0.0 }
            .validate()
            .is_ok());
        assert!(AdversaryModel::AssignmentFraction { p: 1.0 }
            .validate()
            .is_err());
        assert!(AdversaryModel::AssignmentFraction { p: f64::NAN }
            .validate()
            .is_err());
        assert!(AdversaryModel::SybilAccounts {
            total: 10,
            adversary: 3
        }
        .validate()
        .is_ok());
        assert!(AdversaryModel::SybilAccounts {
            total: 10,
            adversary: 10
        }
        .validate()
        .is_err());
        assert!(AdversaryModel::SybilAccounts {
            total: 0,
            adversary: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn strategies_decide_correctly() {
        assert!(!CheatStrategy::Never.cheats_on(5));
        assert!(CheatStrategy::Always.cheats_on(1));
        assert!(!CheatStrategy::Always.cheats_on(0));
        let exact = CheatStrategy::ExactTuples { k: 2 };
        assert!(exact.cheats_on(2));
        assert!(!exact.cheats_on(1));
        assert!(!exact.cheats_on(3));
        let at_least = CheatStrategy::AtLeast { min_copies: 3 };
        assert!(!at_least.cheats_on(2));
        assert!(at_least.cheats_on(3));
        assert!(at_least.cheats_on(7));
        assert!(CheatStrategy::WeakestTuple { k: 1 }.cheats_on(1));
    }
}
