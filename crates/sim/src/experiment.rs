//! Monte-Carlo experiment driver: empirical `P̂_{k,p}` with confidence
//! intervals, multi-threaded and exactly reproducible.

use crate::adversary::{AdversaryModel, CheatStrategy};
use crate::engine::{
    run_campaign_with_faults_scratch, run_campaign_with_scratch, CampaignAccumulator,
    CampaignConfig,
};
use crate::faults::FaultModel;
use crate::outcome::CampaignOutcome;
use crate::task::{expand_plan, TaskSpec};
use redundancy_core::RealizedPlan;
use redundancy_stats::parallel::{run_trials, TrialConfig};
use redundancy_stats::{Proportion, SamplerMode};

/// Monte-Carlo parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Number of independent campaigns.
    pub campaigns: u64,
    /// Root seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Campaigns per deterministic chunk (seed granularity); must be
    /// positive.  Campaigns are heavyweight trials, so the default of
    /// [`TrialConfig::CAMPAIGN_CHUNK_SIZE`] (4) is far below
    /// [`TrialConfig::new`]'s [`TrialConfig::DEFAULT_CHUNK_SIZE`] (256).
    pub chunk_size: u64,
    /// Which sampler strategy campaigns draw holdings with.  The default,
    /// [`SamplerMode::BitCompat`], reproduces the golden snapshots byte
    /// for byte; [`SamplerMode::Fast`] opts into the O(1) alias draws
    /// (same laws, different RNG stream, own determinism checksums).
    pub sampler: SamplerMode,
}

impl ExperimentConfig {
    /// `campaigns` campaigns from `seed`, auto threads, chunks of
    /// [`TrialConfig::CAMPAIGN_CHUNK_SIZE`].
    pub fn new(campaigns: u64, seed: u64) -> Self {
        ExperimentConfig {
            campaigns,
            seed,
            threads: 0,
            chunk_size: TrialConfig::CAMPAIGN_CHUNK_SIZE,
            sampler: SamplerMode::default(),
        }
    }

    /// The same experiment pinned to `threads` worker threads.
    ///
    /// Sweep drivers running grid points concurrently via
    /// `redundancy_stats::parallel_sweep` use this (typically with the
    /// inner share from `sweep_thread_split`) so the per-point experiments
    /// don't oversubscribe the machine.  Chunking and seeds are untouched,
    /// so the outcome is bit-identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The same experiment drawing in `sampler` mode.
    pub fn with_sampler(mut self, sampler: SamplerMode) -> Self {
        self.sampler = sampler;
        self
    }
}

/// Empirical detection estimates from a batch of campaigns.
#[derive(Debug, Clone)]
pub struct DetectionEstimate {
    /// Raw aggregated outcome.
    pub outcome: CampaignOutcome,
}

impl DetectionEstimate {
    /// Estimated `P̂_{k,p}` as a [`Proportion`] (None if `k` never attacked).
    pub fn at_tuple(&self, k: usize) -> Option<Proportion> {
        let attempted = *self.outcome.cheats_attempted.get(k)?;
        if attempted == 0 {
            return None;
        }
        let mut p = Proportion::new();
        p.push_batch(self.outcome.cheats_detected[k], attempted);
        Some(p)
    }

    /// Overall detection proportion across every attacked tuple size.
    pub fn overall(&self) -> Proportion {
        let mut p = Proportion::new();
        p.push_batch(
            self.outcome.total_detected(),
            self.outcome.total_attempted(),
        );
        p
    }

    /// True if the closed-form probability `expected` lies inside the
    /// Wilson 99% interval of the `k`-tuple estimate (vacuously true when
    /// `k` was never attacked).
    pub fn consistent_with(&self, k: usize, expected: f64) -> bool {
        match self.at_tuple(k) {
            Some(p) => p.consistent_with(expected, 2.576),
            None => true,
        }
    }
}

/// Run `config.campaigns` campaigns of `plan` under the given adversary and
/// strategy, in parallel, and aggregate detections.
pub fn detection_experiment(
    plan: &RealizedPlan,
    adversary: AdversaryModel,
    strategy: CheatStrategy,
    config: &ExperimentConfig,
) -> DetectionEstimate {
    let campaign = CampaignConfig::new(adversary, strategy);
    detection_experiment_with(plan, &campaign, config)
}

/// As [`detection_experiment`] but with full campaign configuration
/// (honest fault rate, verification policy).
pub fn detection_experiment_with(
    plan: &RealizedPlan,
    campaign: &CampaignConfig,
    config: &ExperimentConfig,
) -> DetectionEstimate {
    campaign.validate().expect("invalid campaign configuration");
    let tasks: Vec<TaskSpec> = expand_plan(plan);
    let trial_cfg = TrialConfig {
        trials: config.campaigns,
        chunk_size: config.chunk_size,
        threads: config.threads,
        seed: config.seed,
        sampler: config.sampler,
    };
    // The accumulator carries each worker's scratch (results buffer +
    // sampler caches) alongside its partial outcome.  `run_trials` keeps
    // one accumulator alive per worker for the whole run, so steady-state
    // campaigns allocate nothing and CDF tables are built once per worker
    // (enforced by `caches_build_once_per_worker_not_per_chunk` in
    // redundancy-stats).
    let acc: CampaignAccumulator = run_trials(
        &trial_cfg,
        |rng, _i, acc: &mut CampaignAccumulator| {
            acc.scratch.set_sampler_mode(trial_cfg.sampler);
            run_campaign_with_scratch(&tasks, campaign, rng, &mut acc.outcome, &mut acc.scratch)
        },
        |a, b| a.merge(b),
    );
    DetectionEstimate {
        outcome: acc.outcome,
    }
}

/// As [`detection_experiment_with`] but under a [`FaultModel`]: every
/// assignment passes through the drop/straggler/retry pipeline before the
/// supervisor compares whatever actually returned.
///
/// With an inactive model this reduces exactly to
/// [`detection_experiment_with`] — same chunking, same seeds, same draws —
/// so a zero-fault sweep reproduces the baseline tables bit for bit.
pub fn faulty_detection_experiment(
    plan: &RealizedPlan,
    campaign: &CampaignConfig,
    faults: &FaultModel,
    config: &ExperimentConfig,
) -> DetectionEstimate {
    campaign.validate().expect("invalid campaign configuration");
    faults.validate().expect("invalid fault model");
    let tasks: Vec<TaskSpec> = expand_plan(plan);
    let trial_cfg = TrialConfig {
        trials: config.campaigns,
        chunk_size: config.chunk_size,
        threads: config.threads,
        seed: config.seed,
        sampler: config.sampler,
    };
    let acc: CampaignAccumulator = run_trials(
        &trial_cfg,
        |rng, _i, acc: &mut CampaignAccumulator| {
            acc.scratch.set_sampler_mode(trial_cfg.sampler);
            run_campaign_with_faults_scratch(
                &tasks,
                campaign,
                faults,
                rng,
                &mut acc.outcome,
                &mut acc.scratch,
            )
        },
        |a, b| a.merge(b),
    );
    DetectionEstimate {
        outcome: acc.outcome,
    }
}

/// Estimate detection rates for a *huge* plan by sampling tasks instead of
/// enumerating all of them.
///
/// A supervisor planning a 10⁸-task computation does not need to simulate
/// every task to know its detection profile: per-task outcomes are i.i.d.
/// across tasks of the same partition, so sampling `samples` tasks with
/// probabilities proportional to partition sizes (a Walker alias table)
/// yields the same estimator at a fraction of the cost.  The estimates are
/// unbiased for `P̂_{k,p}`; only totals (tasks/assignments) are scaled.
pub fn sampled_detection_experiment(
    plan: &RealizedPlan,
    campaign: &CampaignConfig,
    samples: u64,
    config: &ExperimentConfig,
) -> DetectionEstimate {
    use redundancy_stats::samplers::AliasTable;
    campaign.validate().expect("invalid campaign configuration");
    // One representative TaskSpec per partition + its weight.
    let mut reps: Vec<TaskSpec> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for (next_id, p) in plan.partitions().iter().enumerate() {
        reps.push(TaskSpec {
            id: crate::task::TaskId(next_id as u64),
            multiplicity: p.multiplicity as u32,
            precomputed: matches!(
                p.kind,
                redundancy_core::PartitionKind::Ringer | redundancy_core::PartitionKind::Verified
            ),
        });
        weights.push(p.tasks as f64);
    }
    let table = AliasTable::new(&weights).expect("plan has tasks");
    let trial_cfg = TrialConfig {
        trials: config.campaigns,
        chunk_size: config.chunk_size,
        threads: config.threads,
        seed: config.seed,
        sampler: config.sampler,
    };
    // Per-worker accumulator: campaign scratch plus a reusable buffer for
    // the sampled task multiset, so trials allocate nothing steady-state.
    #[derive(Default)]
    struct SampledAccumulator {
        acc: CampaignAccumulator,
        sampled: Vec<TaskSpec>,
    }
    let acc: SampledAccumulator = run_trials(
        &trial_cfg,
        |rng, _i, s: &mut SampledAccumulator| {
            // Draw `samples` tasks ∝ partition sizes and run one campaign
            // over the sampled multiset.
            s.acc.scratch.set_sampler_mode(trial_cfg.sampler);
            s.sampled.clear();
            s.sampled
                .extend((0..samples).map(|_| reps[table.sample(rng)]));
            run_campaign_with_scratch(
                &s.sampled,
                campaign,
                rng,
                &mut s.acc.outcome,
                &mut s.acc.scratch,
            );
        },
        |a, b| a.acc.merge(b.acc),
    );
    DetectionEstimate {
        outcome: acc.acc.outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_empirical_matches_proposition3() {
        // P̂_{k,p} for k = 1, 2 must bracket 1 − (1−ε)^{1−p}.
        let eps = 0.5;
        let p = 0.15;
        let plan = RealizedPlan::balanced(20_000, eps).unwrap();
        let est = detection_experiment(
            &plan,
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
            &ExperimentConfig::new(40, 12345),
        );
        let expect = 1.0 - (1.0 - eps).powf(1.0 - p);
        for k in 1..=3usize {
            assert!(
                est.consistent_with(k, expect),
                "k={k}: {:?} vs {expect}",
                est.at_tuple(k).map(|p| p.estimate())
            );
        }
        assert!(est.outcome.campaigns == 40);
    }

    #[test]
    fn determinism_across_thread_counts() {
        let plan = RealizedPlan::balanced(2_000, 0.5).unwrap();
        let run = |threads| {
            let cfg = ExperimentConfig {
                campaigns: 12,
                seed: 7,
                threads,
                chunk_size: 4,
                sampler: SamplerMode::default(),
            };
            detection_experiment(
                &plan,
                AdversaryModel::AssignmentFraction { p: 0.2 },
                CheatStrategy::Always,
                &cfg,
            )
            .outcome
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.cheats_attempted, b.cheats_attempted);
        assert_eq!(a.cheats_detected, b.cheats_detected);
        assert_eq!(a.wrong_accepted, b.wrong_accepted);
    }

    #[test]
    fn simple_redundancy_fails_empirically() {
        let plan = RealizedPlan::k_fold(5_000, 2, 0.5).unwrap();
        let est = detection_experiment(
            &plan,
            AdversaryModel::AssignmentFraction { p: 0.3 },
            CheatStrategy::ExactTuples { k: 2 },
            &ExperimentConfig::new(10, 99),
        );
        let pair = est.at_tuple(2).unwrap();
        assert_eq!(pair.estimate(), 0.0, "pair collusion is never caught");
        assert!(est.outcome.wrong_accepted > 0);
    }

    #[test]
    fn sampled_estimator_matches_full_enumeration() {
        // A 10⁷-task plan is far too big to enumerate per campaign; the
        // sampled estimator must still land on Proposition 3.
        let eps = 0.5;
        let p = 0.1;
        let plan = RealizedPlan::balanced(10_000_000, eps).unwrap();
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
        );
        let est =
            sampled_detection_experiment(&plan, &campaign, 20_000, &ExperimentConfig::new(30, 555));
        let expect = 1.0 - (1.0 - eps).powf(1.0 - p);
        assert!(
            est.consistent_with(1, expect),
            "{:?} vs {expect}",
            est.at_tuple(1).map(|q| q.estimate())
        );
        assert!(est.outcome.total_attempted() > 10_000);
    }

    #[test]
    fn sampled_estimator_is_deterministic() {
        let plan = RealizedPlan::balanced(1_000_000, 0.75).unwrap();
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        let run = || {
            sampled_detection_experiment(&plan, &campaign, 2_000, &ExperimentConfig::new(5, 9))
                .outcome
        };
        let a = run();
        let b = run();
        assert_eq!(a.cheats_attempted, b.cheats_attempted);
        assert_eq!(a.cheats_detected, b.cheats_detected);
    }

    #[test]
    fn zero_fault_experiment_matches_baseline_bitwise() {
        let plan = RealizedPlan::balanced(3_000, 0.5).unwrap();
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        let cfg = ExperimentConfig::new(8, 2024);
        let base = detection_experiment_with(&plan, &campaign, &cfg);
        let faulty = faulty_detection_experiment(&plan, &campaign, &FaultModel::none(), &cfg);
        assert_eq!(base.outcome, faulty.outcome);
    }

    #[test]
    fn faulty_experiment_is_thread_count_invariant() {
        let plan = RealizedPlan::balanced(2_000, 0.5).unwrap();
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
        );
        let faults = FaultModel {
            straggler_rate: 0.2,
            straggler_mean_delay: 10.0,
            corrupt_rate: 0.01,
            ..FaultModel::with_drop_rate(0.15)
        };
        let run = |threads| {
            let cfg = ExperimentConfig {
                campaigns: 12,
                seed: 7,
                threads,
                chunk_size: 4,
                sampler: SamplerMode::default(),
            };
            faulty_detection_experiment(&plan, &campaign, &faults, &cfg).outcome
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn drops_degrade_detection_until_retries_recover_it() {
        // Proposition 3 assumes every copy returns.  Heavy unretried loss
        // shrinks the tuples actually compared, so detection must fall
        // below the closed form; a healthy retry budget must pull it back.
        let eps = 0.5;
        let p = 0.15;
        let plan = RealizedPlan::balanced(10_000, eps).unwrap();
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
        );
        let cfg = ExperimentConfig::new(20, 616);
        let no_retry = FaultModel {
            max_retries: 0,
            ..FaultModel::with_drop_rate(0.5)
        };
        let with_retry = FaultModel {
            max_retries: 6,
            ..FaultModel::with_drop_rate(0.5)
        };
        let expect = 1.0 - (1.0 - eps).powf(1.0 - p);
        let degraded = faulty_detection_experiment(&plan, &campaign, &no_retry, &cfg);
        let recovered = faulty_detection_experiment(&plan, &campaign, &with_retry, &cfg);
        let d = degraded.overall().estimate();
        let r = recovered.overall().estimate();
        assert!(d < expect - 0.05, "lossy detection {d} not below {expect}");
        assert!(r > d + 0.05, "retries failed to recover: {r} vs {d}");
        assert!(degraded.outcome.degraded.total() > 0);
        assert!(
            degraded.outcome.effective_multiplicity() < recovered.outcome.effective_multiplicity()
        );
    }

    #[test]
    fn overall_proportion_aggregates() {
        let plan = RealizedPlan::balanced(5_000, 0.5).unwrap();
        let est = detection_experiment(
            &plan,
            AdversaryModel::AssignmentFraction { p: 0.2 },
            CheatStrategy::Always,
            &ExperimentConfig::new(5, 3),
        );
        let overall = est.overall();
        assert!(overall.trials() > 0);
        // Proposition 3 at p = 0.2: every tuple size detects at ≈ 0.4257.
        let expect = 1.0 - 0.5f64.powf(0.8);
        assert!(
            (overall.estimate() - expect).abs() < 0.05,
            "{}",
            overall.estimate()
        );
    }
}
