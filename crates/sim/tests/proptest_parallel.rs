//! Property-based equivalence tests for the worker-persistent trial
//! runner (proptest).
//!
//! The worker-persistent `run_trials` keeps one accumulator (scratch
//! buffers, CDF caches and all) alive per worker for an entire run.  The
//! old design built a fresh accumulator for every chunk.  These tests pin
//! the refactor's contract: for the real campaign kernels — fault-free
//! *and* fault-injecting — the persistent runner is bit-identical to a
//! fresh-accumulator-per-chunk oracle at every thread count, across
//! trial/chunk shapes covering zero chunks, a single chunk, and odd
//! remainders.

use proptest::prelude::*;
use redundancy_core::RealizedPlan;
use redundancy_sim::task::expand_plan;
use redundancy_sim::{
    run_campaign_with_faults_scratch, run_campaign_with_scratch, AdversaryModel,
    CampaignAccumulator, CampaignConfig, CampaignOutcome, CheatStrategy, FaultModel,
};
use redundancy_stats::{run_trials, DeterministicRng, SeedSequence, TrialConfig};

fn small_config() -> CampaignConfig {
    CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.15 },
        CheatStrategy::AtLeast { min_copies: 1 },
    )
}

/// The old runner's exact semantics: one fresh accumulator per chunk,
/// chunk `c` seeded from `SeedSequence::derive(c)`, partials merged in
/// chunk order.  Any divergence between this and `run_trials` means the
/// persistent caches leaked state into the sampled values.
fn fresh_per_chunk_oracle<F>(trials: u64, chunk_size: u64, seed: u64, trial: F) -> CampaignOutcome
where
    F: Fn(&mut DeterministicRng, u64, &mut CampaignAccumulator),
{
    let seq = SeedSequence::new(seed);
    let n_chunks = trials.div_ceil(chunk_size);
    let mut total = CampaignAccumulator::default();
    for chunk in 0..n_chunks {
        let mut acc = CampaignAccumulator::default();
        let mut rng = DeterministicRng::new(seq.derive(chunk));
        let start = chunk * chunk_size;
        let end = (start + chunk_size).min(trials);
        for i in start..end {
            trial(&mut rng, i, &mut acc);
        }
        total.merge(acc);
    }
    total.outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free kernel: persistent workers reproduce the per-chunk
    /// oracle exactly at 1, 2, 4, and 8 threads.
    #[test]
    fn persistent_runner_matches_fresh_chunk_oracle(
        tasks_n in 10u64..60,
        trials in 0u64..24,
        chunk_size in 1u64..9,
        seed in 0u64..10_000,
    ) {
        let plan = RealizedPlan::balanced(tasks_n, 0.5).unwrap();
        let tasks = expand_plan(&plan);
        let cfg = small_config();
        let trial = |rng: &mut DeterministicRng, _i: u64, acc: &mut CampaignAccumulator| {
            run_campaign_with_scratch(&tasks, &cfg, rng, &mut acc.outcome, &mut acc.scratch);
        };
        let expected = fresh_per_chunk_oracle(trials, chunk_size, seed, trial);
        for threads in [1usize, 2, 4, 8] {
            let config = TrialConfig { trials, chunk_size, threads, seed, sampler: Default::default() };
            let acc: CampaignAccumulator =
                run_trials(&config, trial, |a, b| a.merge(b));
            prop_assert_eq!(&acc.outcome, &expected, "threads = {}", threads);
        }
    }

    /// Fault path: the per-assignment delivery draws also replay exactly,
    /// so retries/drops/timeouts cannot depend on worker layout either.
    #[test]
    fn fault_kernel_matches_oracle_across_thread_counts(
        tasks_n in 10u64..50,
        trials in 0u64..16,
        chunk_size in 1u64..7,
        drop_pct in 0u32..50,
        straggler_pct in 0u32..50,
        seed in 0u64..10_000,
    ) {
        let plan = RealizedPlan::balanced(tasks_n, 0.5).unwrap();
        let tasks = expand_plan(&plan);
        let cfg = small_config();
        let faults = FaultModel {
            drop_rate: f64::from(drop_pct) / 100.0,
            straggler_rate: f64::from(straggler_pct) / 100.0,
            straggler_mean_delay: 12.0,
            timeout: 8,
            max_retries: 2,
            ..FaultModel::none()
        };
        prop_assert!(faults.validate().is_ok());
        let trial = |rng: &mut DeterministicRng, _i: u64, acc: &mut CampaignAccumulator| {
            run_campaign_with_faults_scratch(
                &tasks, &cfg, &faults, rng, &mut acc.outcome, &mut acc.scratch,
            );
        };
        let expected = fresh_per_chunk_oracle(trials, chunk_size, seed, trial);
        for threads in [1usize, 2, 4, 8] {
            let config = TrialConfig { trials, chunk_size, threads, seed, sampler: Default::default() };
            let acc: CampaignAccumulator =
                run_trials(&config, trial, |a, b| a.merge(b));
            prop_assert_eq!(&acc.outcome, &expected, "threads = {}", threads);
        }
    }
}

/// The shapes the proptest ranges only sample are each pinned once:
/// zero trials (no chunks at all), trials below one chunk, an exact
/// multiple, and an odd remainder on the last chunk.
#[test]
fn chunk_edge_shapes_are_exact() {
    let plan = RealizedPlan::balanced(24, 0.5).unwrap();
    let tasks = expand_plan(&plan);
    let cfg = small_config();
    let trial = |rng: &mut DeterministicRng, _i: u64, acc: &mut CampaignAccumulator| {
        run_campaign_with_scratch(&tasks, &cfg, rng, &mut acc.outcome, &mut acc.scratch);
    };
    for (trials, chunk_size) in [(0u64, 4u64), (3, 8), (12, 4), (13, 4), (1, 1)] {
        let expected = fresh_per_chunk_oracle(trials, chunk_size, 77, trial);
        for threads in [1usize, 2, 4, 8] {
            let config = TrialConfig {
                trials,
                chunk_size,
                threads,
                seed: 77,
                sampler: Default::default(),
            };
            let acc: CampaignAccumulator = run_trials(&config, trial, |a, b| a.merge(b));
            assert_eq!(
                acc.outcome, expected,
                "trials {trials}, chunk {chunk_size}, threads {threads}"
            );
        }
    }
}
