//! Differential tests for the fast (alias-method) sampler mode against the
//! bit-compat default (proptest).
//!
//! The fast mode deliberately breaks RNG-stream compatibility — it bins a
//! whole spec group through one multinomial draw where bit-compat walks
//! the CDF once per task — so the two modes are compared on what they
//! must share:
//!
//! * on parameter sets where no randomness is consumed at all (degenerate
//!   adversary shares, whose plans are `Certain` in both modes) the
//!   campaigns are **bit-identical**, final RNG state included;
//! * on stochastic paths the modes sample the *same laws*, so mean
//!   detection agrees within statistical tolerance;
//! * fast mode is deterministic in its own right: same seed → same
//!   outcome at every thread count.

use proptest::prelude::*;
use redundancy_core::RealizedPlan;
use redundancy_sim::task::expand_plan;
use redundancy_sim::{
    detection_experiment, run_campaign_with_scratch, AdversaryModel, CampaignConfig,
    CampaignOutcome, CampaignScratch, CheatStrategy, ExperimentConfig,
};
use redundancy_stats::{DeterministicRng, SamplerMode};

/// Run one campaign over `tasks` in the given mode, returning the outcome
/// and the final RNG state.
fn run_mode(
    tasks: &[redundancy_sim::task::TaskSpec],
    cfg: &CampaignConfig,
    seed: u64,
    mode: SamplerMode,
) -> (CampaignOutcome, DeterministicRng) {
    let mut rng = DeterministicRng::new(seed);
    let mut scratch = CampaignScratch::new().with_sampler_mode(mode);
    let mut out = CampaignOutcome::default();
    run_campaign_with_scratch(tasks, cfg, &mut rng, &mut out, &mut scratch);
    (out, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adversaries holding nothing (assignment share 0, or a sybil pool
    /// with zero adversary accounts) resolve to `Certain` plans in both
    /// modes: no uniform is ever drawn, so the fast campaign must be
    /// bit-identical to bit-compat — outcome and final RNG state.
    #[test]
    fn modes_agree_exactly_where_no_rng_is_consumed(
        tasks_n in 10u64..80,
        seed in 0u64..10_000,
        sybil in 0u8..2,
    ) {
        let plan = RealizedPlan::balanced(tasks_n, 0.5).unwrap();
        let tasks = expand_plan(&plan);
        let adversary = if sybil == 1 {
            AdversaryModel::SybilAccounts { total: 500, adversary: 0 }
        } else {
            AdversaryModel::AssignmentFraction { p: 0.0 }
        };
        let cfg = CampaignConfig::new(adversary, CheatStrategy::Always);
        let (compat_out, compat_rng) = run_mode(&tasks, &cfg, seed, SamplerMode::BitCompat);
        let (fast_out, fast_rng) = run_mode(&tasks, &cfg, seed, SamplerMode::Fast);
        prop_assert_eq!(&fast_out, &compat_out, "outcomes diverged");
        prop_assert_eq!(fast_rng, compat_rng, "a degenerate plan consumed RNG");
        // Sanity: an empty-handed adversary never attacks.
        prop_assert_eq!(fast_out.total_attempted(), 0);
    }

    /// Fast mode is deterministic and thread-count invariant on the
    /// experiment level, exactly like bit-compat: same seed, any thread
    /// count, same aggregated outcome.
    #[test]
    fn fast_mode_experiments_are_thread_count_invariant(
        tasks_n in 20u64..60,
        campaigns in 1u64..10,
        seed in 0u64..10_000,
    ) {
        let plan = RealizedPlan::balanced(tasks_n, 0.5).unwrap();
        let run = |threads: usize| {
            let config = ExperimentConfig::new(campaigns, seed)
                .with_threads(threads)
                .with_sampler(SamplerMode::Fast);
            detection_experiment(
                &plan,
                AdversaryModel::AssignmentFraction { p: 0.15 },
                CheatStrategy::AtLeast { min_copies: 1 },
                &config,
            )
            .outcome
        };
        let serial = run(1);
        prop_assert_eq!(&run(2), &serial, "2 threads diverged");
        prop_assert_eq!(&run(4), &serial, "4 threads diverged");
    }
}

/// On stochastic paths the two modes draw from the same distributions with
/// different streams, so they are compared statistically: the pooled
/// detection estimates must sit within a few combined standard errors of
/// each other.  Covers both hot samplers — the binomial (assignment-
/// fraction adversary) and the hypergeometric (sybil-accounts adversary).
#[test]
fn modes_agree_statistically_on_stochastic_paths() {
    let plan = RealizedPlan::balanced(400, 0.6).unwrap();
    let adversaries = [
        AdversaryModel::AssignmentFraction { p: 0.1 },
        AdversaryModel::SybilAccounts {
            total: 1_000,
            adversary: 100,
        },
    ];
    for adversary in adversaries {
        let estimate = |mode: SamplerMode| {
            let config = ExperimentConfig::new(256, 20_050_926).with_sampler(mode);
            detection_experiment(&plan, adversary, CheatStrategy::Always, &config).overall()
        };
        let compat = estimate(SamplerMode::BitCompat);
        let fast = estimate(SamplerMode::Fast);
        assert!(
            compat.trials() > 10_000 && fast.trials() > 10_000,
            "{adversary:?}: not enough attacks to compare ({} vs {})",
            compat.trials(),
            fast.trials()
        );
        let diff = (fast.estimate() - compat.estimate()).abs();
        // Wilson-interval-scale tolerance: 5 combined standard errors of
        // the larger-variance side, so a genuine distribution mismatch
        // fails while stream-level noise passes with huge margin.
        let se = |p: redundancy_stats::Proportion| {
            (p.estimate() * (1.0 - p.estimate()) / p.trials() as f64).sqrt()
        };
        let tolerance = 5.0 * (se(compat) + se(fast)).max(1e-4);
        assert!(
            diff <= tolerance,
            "{adversary:?}: detection {} (bit-compat) vs {} (fast) differ by {diff}, \
             beyond tolerance {tolerance}",
            compat.estimate(),
            fast.estimate()
        );
    }
}

/// The same fast campaign replays bit for bit on the same seed — the
/// pinned-checksum property CI asserts on the `campaign_fast` bench
/// fixture, checked here at the outcome level.
#[test]
fn fast_mode_replays_exactly_on_a_seed() {
    let plan = RealizedPlan::balanced(300, 0.6).unwrap();
    let tasks = expand_plan(&plan);
    let cfg = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.1 },
        CheatStrategy::Always,
    );
    let (a_out, a_rng) = run_mode(&tasks, &cfg, 7, SamplerMode::Fast);
    let (b_out, b_rng) = run_mode(&tasks, &cfg, 7, SamplerMode::Fast);
    assert_eq!(a_out, b_out);
    assert_eq!(a_rng, b_rng);
    // And it genuinely draws through a different stream than the walk on
    // this pinned seed — identical outcomes would mean the fast plan never
    // engaged.
    let (compat_out, _) = run_mode(&tasks, &cfg, 7, SamplerMode::BitCompat);
    assert_ne!(
        a_out, compat_out,
        "fast mode produced the walk's exact draws; is the alias plan wired in?"
    );
}
