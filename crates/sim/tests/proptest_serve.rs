//! Property-based tests for the live serve store (proptest).
//!
//! The headline property — this PR's correctness spine — is that a
//! *drained* serve session is bit-identical to the batched campaign
//! kernel: same outcome counters AND same final RNG state, for random
//! campaign shapes, at 1, 2, and 4 shards, under arbitrary client
//! interleavings.  Alongside it: timeouts and re-queues never lose or
//! duplicate a task copy (conservation of multiplicity).

use proptest::collection::vec;
use proptest::prelude::*;
use redundancy_core::RealizedPlan;
use redundancy_sim::experiment::detection_experiment_with;
use redundancy_sim::serve::{Assignment, Issue, ServeConfig};
use redundancy_sim::{
    drain_session, run_campaign_with_scratch, serve_experiment, AdversaryModel, AssignmentStore,
    CampaignConfig, CampaignOutcome, CampaignScratch, CheatStrategy, ConcurrentStore,
    ExperimentConfig, FaultModel,
};
use redundancy_stats::DeterministicRng;

/// Decode drawn scalars into an arbitrary-but-valid campaign shape.
fn campaign_shape(
    tasks: u64,
    eps_pct: u32,
    p_pct: u32,
    strategy_ix: u32,
    majority: bool,
    err_pct: u32,
) -> (RealizedPlan, CampaignConfig) {
    let plan = RealizedPlan::balanced(tasks, f64::from(eps_pct) / 100.0).unwrap();
    let strategy = match strategy_ix % 4 {
        0 => CheatStrategy::Never,
        1 => CheatStrategy::Always,
        2 => CheatStrategy::ExactTuples { k: 1 },
        _ => CheatStrategy::AtLeast { min_copies: 1 },
    };
    let mut config = CampaignConfig::new(
        AdversaryModel::AssignmentFraction {
            p: f64::from(p_pct) / 100.0,
        },
        strategy,
    );
    if majority {
        config.policy = redundancy_sim::supervisor::VerificationPolicy::Majority;
    }
    config.honest_error_rate = f64::from(err_pct) / 100.0;
    (plan, config)
}

/// A serve config whose timeout can never fire within a test run.
fn patient(shards: usize) -> ServeConfig {
    ServeConfig {
        faults: FaultModel {
            timeout: 1_u64 << 40,
            ..FaultModel::none()
        },
        ..ServeConfig::new(shards)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A drained session equals `run_campaign_with_scratch` bit for bit —
    /// identical outcome counters and identical final RNG state — at 1, 2,
    /// and 4 shards, across back-to-back campaigns sharing one RNG stream.
    #[test]
    fn drained_session_is_bit_identical_at_1_2_4_shards(
        tasks in 100u64..2_000,
        eps_pct in 5u32..95,
        p_pct in 0u32..60,
        strategy_ix in 0u32..4,
        majority_ix in 0u32..2,
        err_pct in 0u32..5,
        seed in 0u64..100_000,
    ) {
        let (plan, config) =
            campaign_shape(tasks, eps_pct, p_pct, strategy_ix, majority_ix == 1, err_pct);
        let specs = redundancy_sim::task::expand_plan(&plan);
        let mut base_rng = DeterministicRng::new(seed);
        let mut base_out = CampaignOutcome::default();
        let mut scratch = CampaignScratch::new();
        for _ in 0..2 {
            run_campaign_with_scratch(&specs, &config, &mut base_rng, &mut base_out, &mut scratch);
        }
        for shards in [1usize, 2, 4] {
            let mut serve_rng = DeterministicRng::new(seed);
            let mut serve_out = CampaignOutcome::default();
            for _ in 0..2 {
                drain_session(
                    &specs,
                    &config,
                    &ServeConfig::new(shards),
                    &mut serve_rng,
                    &mut serve_out,
                );
            }
            prop_assert_eq!(&base_out, &serve_out, "outcome diverged at {} shards", shards);
            prop_assert_eq!(&base_rng, &serve_rng, "RNG diverged at {} shards", shards);
        }
    }

    /// The same equivalence holds through the threaded Monte-Carlo driver:
    /// `serve_experiment` equals `detection_experiment_with` bitwise at
    /// every thread count, and the thread count itself changes nothing.
    #[test]
    fn serve_experiment_matches_baseline_at_1_2_4_threads(
        tasks in 100u64..1_200,
        eps_pct in 5u32..95,
        p_pct in 0u32..60,
        strategy_ix in 0u32..4,
        campaigns in 1u64..10,
        seed in 0u64..100_000,
    ) {
        let (plan, config) = campaign_shape(tasks, eps_pct, p_pct, strategy_ix, false, 0);
        for threads in [1usize, 2, 4] {
            let cfg = ExperimentConfig {
                campaigns,
                seed,
                threads,
                chunk_size: 2,
                sampler: Default::default(),
            };
            let base = detection_experiment_with(&plan, &config, &cfg);
            let served = serve_experiment(&plan, &config, &ServeConfig::new(2), &cfg);
            prop_assert_eq!(&base.outcome, &served.outcome, "threads = {}", threads);
        }
    }

    /// Interleaving invariance: any client-request permutation that
    /// respects per-task ordering (copies return only after they are
    /// issued) reaches the same final store state as the sequential drain —
    /// same merged outcome, same stats snapshot, same RNG.
    #[test]
    fn any_return_interleaving_reaches_the_same_final_state(
        tasks in 50u64..600,
        eps_pct in 10u32..90,
        p_pct in 0u32..50,
        strategy_ix in 0u32..4,
        seed in 0u64..100_000,
        decisions in vec(0u32..1_000_000, 64usize),
    ) {
        let (plan, config) = campaign_shape(tasks, eps_pct, p_pct, strategy_ix, false, 0);
        let specs = redundancy_sim::task::expand_plan(&plan);

        // Reference: the sequential drain.
        let mut seq_rng = DeterministicRng::new(seed);
        let mut seq_out = CampaignOutcome::default();
        let seq_stats = drain_session(&specs, &config, &patient(3), &mut seq_rng, &mut seq_out);

        // Shuffled: buffer assignments and return them in an arbitrary
        // drawn order, interleaved with further requests.
        let mut rng = DeterministicRng::new(seed);
        let mut store = AssignmentStore::new(&specs, &config, &patient(3)).unwrap();
        let mut held: Vec<Assignment> = Vec::new();
        let mut step = 0usize;
        loop {
            let d = decisions[step % decisions.len()] as usize;
            step += 1;
            // Mostly request; sometimes return a random held assignment.
            let return_now = !held.is_empty() && (d.is_multiple_of(3) || held.len() > 200);
            if return_now {
                let a = held.swap_remove(d % held.len());
                store.return_result(a.task, a.copy).unwrap();
                continue;
            }
            match store.request_work(&mut rng) {
                Issue::Work(a) => held.push(a),
                Issue::Idle => {
                    let a = held.swap_remove(d % held.len());
                    store.return_result(a.task, a.copy).unwrap();
                }
                Issue::Drained => break,
            }
        }
        store.check_invariants();
        prop_assert!(store.is_drained());
        prop_assert_eq!(&store.merged_outcome(), &seq_out);
        prop_assert_eq!(store.stats(), seq_stats);
        prop_assert_eq!(&rng, &seq_rng);
    }

    /// Conservation of multiplicity: with an aggressive timeout and clients
    /// that drop a drawn subset of assignments on the floor, every copy is
    /// still accounted for — re-queued or abandoned, never lost track of,
    /// never duplicated — and the store always drains.
    #[test]
    fn timeouts_and_requeues_conserve_every_copy(
        tasks in 20u64..300,
        eps_pct in 10u32..90,
        p_pct in 0u32..50,
        timeout in 1u64..6,
        max_retries in 0u32..4,
        seed in 0u64..100_000,
        drops in vec(0u32..2, 64usize),
    ) {
        let (plan, config) = campaign_shape(tasks, eps_pct, p_pct, 1, false, 0);
        let specs = redundancy_sim::task::expand_plan(&plan);
        let serve = ServeConfig {
            faults: FaultModel {
                timeout,
                max_retries,
                ..FaultModel::none()
            },
            ..ServeConfig::new(3)
        };
        let mut rng = DeterministicRng::new(seed);
        let mut store = AssignmentStore::new(&specs, &config, &serve).unwrap();
        let mut dispatched = 0u64;
        let mut returned = 0u64;
        let mut guard = 0u64;
        loop {
            match store.request_work(&mut rng) {
                Issue::Work(a) => {
                    if drops[(dispatched % drops.len() as u64) as usize] == 1 {
                        // Dropped on the floor: only a timeout can recover it.
                    } else {
                        store.return_result(a.task, a.copy).unwrap();
                        returned += 1;
                    }
                    dispatched += 1;
                }
                Issue::Idle => {}
                Issue::Drained => break,
            }
            guard += 1;
            prop_assert!(guard < 5_000_000, "drain did not terminate");
            if guard.is_multiple_of(512) {
                store.check_invariants();
            }
        }
        store.check_invariants();
        let stats = store.stats();
        prop_assert_eq!(stats.completed_tasks, stats.total_tasks);
        prop_assert_eq!(stats.returned + stats.lost, stats.total_copies);
        prop_assert_eq!(stats.returned, returned);
        prop_assert_eq!(stats.issued, stats.total_copies + stats.retries);
        prop_assert_eq!(stats.timeouts, stats.retries + stats.lost);
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(stats.requeued, 0);
        let out = store.merged_outcome();
        prop_assert_eq!(out.tasks, stats.total_tasks);
        prop_assert_eq!(out.lost_assignments, stats.lost);
    }

    /// Per-shard streams: any request/return interleaving against the
    /// [`ConcurrentStore`] reaches the same drained state as the
    /// shard-by-shard oracle drain — same merged outcome, same per-shard
    /// final RNG states, same stats — at 1, 2, and 4 shards.  This is the
    /// determinism contract that makes concurrent clients safe: the
    /// drained session is a pure function of (seed, shard count).
    #[test]
    fn per_shard_drain_is_invariant_to_request_interleaving(
        tasks in 50u64..600,
        eps_pct in 10u32..90,
        p_pct in 0u32..50,
        strategy_ix in 0u32..4,
        seed in 0u64..100_000,
        decisions in vec(0u32..1_000_000, 64usize),
    ) {
        let (plan, config) = campaign_shape(tasks, eps_pct, p_pct, strategy_ix, false, 0);
        let specs = redundancy_sim::task::expand_plan(&plan);
        for shards in [1usize, 2, 4] {
            // Reference: a fresh store drained one whole shard at a time.
            let oracle = ConcurrentStore::new(&specs, &config, &patient(shards), seed).unwrap();
            oracle.drain_shard_by_shard();

            // Shuffled: buffer assignments and return them in an arbitrary
            // drawn order, interleaved with further requests.
            let store = ConcurrentStore::new(&specs, &config, &patient(shards), seed).unwrap();
            let mut held: Vec<Assignment> = Vec::new();
            let mut step = 0usize;
            loop {
                let d = decisions[step % decisions.len()] as usize;
                step += 1;
                let return_now = !held.is_empty() && (d.is_multiple_of(3) || held.len() > 200);
                if return_now {
                    let a = held.swap_remove(d % held.len());
                    store.return_result(a.task, a.copy).unwrap();
                    continue;
                }
                match store.request_work() {
                    Issue::Work(a) => held.push(a),
                    Issue::Idle => {
                        let a = held.swap_remove(d % held.len());
                        store.return_result(a.task, a.copy).unwrap();
                    }
                    Issue::Drained => break,
                }
            }
            store.check_invariants();
            prop_assert!(store.is_drained());
            prop_assert_eq!(&store.merged_outcome(), &oracle.merged_outcome(),
                "outcome diverged at {} shards", shards);
            prop_assert_eq!(&store.final_rngs(), &oracle.final_rngs(),
                "per-shard RNG diverged at {} shards", shards);
            prop_assert_eq!(store.stats(), oracle.stats());
            prop_assert_eq!(store.per_shard_stats(), oracle.per_shard_stats());
        }
    }

    /// Conservation of multiplicity per shard: the sharded store under an
    /// aggressive timeout and floor-dropped assignments still accounts for
    /// every copy, shard-locally and in aggregate — the per-shard stats
    /// cells obey the same identities as the session totals and sum to
    /// them exactly.
    #[test]
    fn per_shard_timeouts_conserve_every_copy(
        tasks in 20u64..300,
        eps_pct in 10u32..90,
        p_pct in 0u32..50,
        timeout in 1u64..6,
        max_retries in 0u32..4,
        seed in 0u64..100_000,
        drops in vec(0u32..2, 64usize),
    ) {
        let (plan, config) = campaign_shape(tasks, eps_pct, p_pct, 1, false, 0);
        let specs = redundancy_sim::task::expand_plan(&plan);
        let serve = ServeConfig {
            faults: FaultModel {
                timeout,
                max_retries,
                ..FaultModel::none()
            },
            ..ServeConfig::new(3)
        };
        let store = ConcurrentStore::new(&specs, &config, &serve, seed).unwrap();
        let mut dispatched = 0u64;
        let mut returned = 0u64;
        let mut guard = 0u64;
        loop {
            match store.request_work() {
                Issue::Work(a) => {
                    if drops[(dispatched % drops.len() as u64) as usize] == 1 {
                        // Dropped on the floor: only a timeout can recover it.
                    } else {
                        store.return_result(a.task, a.copy).unwrap();
                        returned += 1;
                    }
                    dispatched += 1;
                }
                Issue::Idle => {}
                Issue::Drained => break,
            }
            guard += 1;
            prop_assert!(guard < 5_000_000, "drain did not terminate");
            if guard.is_multiple_of(512) {
                store.check_invariants();
            }
        }
        store.check_invariants();
        let stats = store.stats();
        prop_assert_eq!(stats.completed_tasks, stats.total_tasks);
        prop_assert_eq!(stats.returned + stats.lost, stats.total_copies);
        prop_assert_eq!(stats.returned, returned);
        prop_assert_eq!(stats.issued, stats.total_copies + stats.retries);
        prop_assert_eq!(stats.timeouts, stats.retries + stats.lost);
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(stats.requeued, 0);
        let cells = store.per_shard_stats();
        for cell in &cells {
            prop_assert_eq!(cell.completed_tasks, cell.total_tasks);
            prop_assert_eq!(cell.returned + cell.lost, cell.total_copies);
            prop_assert_eq!(cell.issued, cell.total_copies + cell.retries);
            prop_assert_eq!(cell.timeouts, cell.retries + cell.lost);
            prop_assert_eq!(cell.in_flight, 0);
        }
        prop_assert_eq!(cells.iter().map(|c| c.issued).sum::<u64>(), stats.issued);
        prop_assert_eq!(cells.iter().map(|c| c.lost).sum::<u64>(), stats.lost);
        prop_assert_eq!(cells.iter().map(|c| c.total_copies).sum::<u64>(), stats.total_copies);
    }

    /// Crash/corruption safety of the serve journal: record a full
    /// journaled session, then flip one drawn bit or truncate at one
    /// drawn offset.  Strict replay must return a structured error —
    /// never panic, never silently diverge — except for a truncation at
    /// an exact record boundary, which *is* a valid journal and must
    /// replay to a store that recovers and drains cleanly.
    #[test]
    fn corrupted_journals_replay_to_structured_errors_never_panics(
        tasks in 20u64..200,
        eps_pct in 10u32..90,
        p_pct in 0u32..50,
        timeout in 2u64..8,
        seed in 0u64..100_000,
        mode_ix in 0u32..2,
        cut_sel in 0u32..1_000_000,
        flip_sel in 0u32..1_000_000,
        flip_bit in 0u32..8,
    ) {
        use redundancy_sim::serve::{
            replay_with, workload_fingerprint, JournalWriter, JournaledStore, Record,
            ReplayOptions, SessionHeader, SharedBuf, StoreEnum, StreamMode, SyncPolicy, WorkStore,
        };
        let (plan, config) = campaign_shape(tasks, eps_pct, p_pct, 1, false, 0);
        let specs = redundancy_sim::task::expand_plan(&plan);
        let mode = if mode_ix == 0 { StreamMode::Single } else { StreamMode::PerShard };
        let serve = ServeConfig {
            faults: FaultModel { timeout, ..FaultModel::none() },
            ..ServeConfig::new(2)
        };

        // Record the session: withhold every third copy so timeouts,
        // re-queues, and lost copies all land in the journal.
        let buf = SharedBuf::new();
        let mut writer = JournalWriter::new(buf.clone(), SyncPolicy::Always);
        writer.append(&Record::Header(SessionHeader {
            seed,
            shards: 2,
            mode,
            timeout: serve.faults.timeout,
            max_retries: serve.faults.max_retries,
            fingerprint: workload_fingerprint(&specs, &config),
            total_tasks: specs.len() as u64,
        })).unwrap();
        let store = StoreEnum::new(&specs, &config, &serve, seed, mode).unwrap();
        let mut live = JournaledStore::new(store, Some(writer));
        let mut held: Vec<(redundancy_sim::TaskId, u32)> = Vec::new();
        let mut guard = 0u64;
        loop {
            match live.request_work() {
                Issue::Work(a) if a.task.0.is_multiple_of(3) => held.push((a.task, a.copy)),
                Issue::Work(a) => { let _ = live.return_result(a.task, a.copy); }
                Issue::Idle => {
                    if let Some((task, copy)) = held.pop() {
                        let _ = live.return_result(task, copy);
                    }
                }
                Issue::Drained => break,
            }
            guard += 1;
            prop_assert!(guard < 2_000_000, "journaled drain did not terminate");
        }
        live.finish().unwrap();
        let bytes = buf.snapshot();

        // Frame walk: every valid truncation point (after each record).
        let mut ends = Vec::new();
        let mut off = 0usize;
        while off + 4 <= bytes.len() {
            let len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 4 + len + 8;
            ends.push(off);
        }
        prop_assert_eq!(*ends.last().unwrap(), bytes.len());

        // Truncation at a drawn offset: a record boundary is a valid
        // journal that recovers and drains; anything else is a
        // structured error.
        let cut = cut_sel as usize % (bytes.len() + 1);
        let opts = ReplayOptions::default();
        match replay_with(&bytes[..cut], &specs, &config, opts) {
            Ok(replayed) => {
                prop_assert!(ends.contains(&cut), "mid-record cut {} replayed", cut);
                let mut recovered = replayed.store;
                recovered.reset_in_flight();
                recovered.drain();
                let stats = recovered.stats();
                prop_assert_eq!(stats.completed_tasks, stats.total_tasks);
                prop_assert_eq!(stats.in_flight, 0);
            }
            Err(e) => {
                prop_assert!(!ends.contains(&cut), "boundary cut {} errored: {}", cut, e);
                // Structured: the error renders and names a position.
                prop_assert!(!format!("{}", e).is_empty());
            }
        }

        // A single flipped bit anywhere is always detected.
        let pos = flip_sel as usize % bytes.len();
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1u8 << flip_bit;
        let verdict = replay_with(&flipped, &specs, &config, opts);
        prop_assert!(verdict.is_err(), "flipped bit {} at {} went undetected", flip_bit, pos);
    }
}
