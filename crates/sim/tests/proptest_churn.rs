//! Property-based tests for the churn engine (proptest).
//!
//! The headline property — the PR's correctness spine — is that zero churn
//! (`enter_rate = leave_rate = fail_rate = 0`) is *bit-identical* to the
//! batched campaign kernel: same outcome counters AND same final RNG
//! state, for random campaign shapes, at 1, 2, and 4 worker threads.

use proptest::collection::vec;
use proptest::prelude::*;
use redundancy_core::RealizedPlan;
use redundancy_sim::experiment::detection_experiment_with;
use redundancy_sim::{
    churn_experiment, run_campaign_with_churn_scratch, run_campaign_with_scratch, AdversaryModel,
    CampaignConfig, CampaignOutcome, CampaignScratch, CheatStrategy, ChurnModel, ChurnOutcome,
    ExperimentConfig,
};
use redundancy_stats::DeterministicRng;

/// Decode drawn scalars into an arbitrary-but-valid campaign shape.
fn campaign_shape(
    tasks: u64,
    eps_pct: u32,
    p_pct: u32,
    strategy_ix: u32,
    majority: bool,
) -> (RealizedPlan, CampaignConfig) {
    let plan = RealizedPlan::balanced(tasks, f64::from(eps_pct) / 100.0).unwrap();
    let strategy = match strategy_ix % 4 {
        0 => CheatStrategy::Never,
        1 => CheatStrategy::Always,
        2 => CheatStrategy::ExactTuples { k: 1 },
        _ => CheatStrategy::AtLeast { min_copies: 1 },
    };
    let mut config = CampaignConfig::new(
        AdversaryModel::AssignmentFraction {
            p: f64::from(p_pct) / 100.0,
        },
        strategy,
    );
    if majority {
        config.policy = redundancy_sim::supervisor::VerificationPolicy::Majority;
    }
    (plan, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero churn delegates to `run_campaign_with_scratch` bit for bit:
    /// identical outcome counters and identical final RNG state, across
    /// back-to-back campaigns sharing one scratch.
    #[test]
    fn zero_churn_kernel_is_bit_identical(
        tasks in 100u64..2_000,
        eps_pct in 5u32..95,
        p_pct in 0u32..60,
        strategy_ix in 0u32..4,
        majority_ix in 0u32..2,
        seed in 0u64..100_000,
    ) {
        let (plan, config) =
            campaign_shape(tasks, eps_pct, p_pct, strategy_ix, majority_ix == 1);
        let specs = redundancy_sim::task::expand_plan(&plan);
        let churn = ChurnModel::none();
        prop_assert!(!churn.is_active());
        let mut base_rng = DeterministicRng::new(seed);
        let mut churn_rng = base_rng.clone();
        let mut base_out = CampaignOutcome::default();
        let mut churn_out = ChurnOutcome::default();
        let mut base_scratch = CampaignScratch::new();
        let mut churn_scratch = CampaignScratch::new();
        for _ in 0..2 {
            run_campaign_with_scratch(
                &specs,
                &config,
                &mut base_rng,
                &mut base_out,
                &mut base_scratch,
            );
            run_campaign_with_churn_scratch(
                &specs,
                &config,
                &churn,
                &mut churn_rng,
                &mut churn_out,
                &mut churn_scratch,
            );
        }
        prop_assert_eq!(base_out, churn_out.campaign);
        prop_assert_eq!(base_rng, churn_rng);
        prop_assert!(churn_out.census.is_empty());
        prop_assert_eq!(churn_out.events, 0);
    }

    /// The same equivalence holds through the threaded Monte-Carlo driver:
    /// a zero-churn experiment equals the churn-free experiment bitwise at
    /// every thread count, and the thread count itself changes nothing.
    #[test]
    fn zero_churn_experiment_matches_baseline_at_1_2_4_threads(
        tasks in 100u64..1_200,
        eps_pct in 5u32..95,
        p_pct in 0u32..60,
        strategy_ix in 0u32..4,
        campaigns in 1u64..10,
        seed in 0u64..100_000,
    ) {
        let (plan, config) = campaign_shape(tasks, eps_pct, p_pct, strategy_ix, false);
        let churn = ChurnModel::none();
        for threads in [1usize, 2, 4] {
            let cfg = ExperimentConfig {
                campaigns,
                seed,
                threads,
                chunk_size: 2,
                sampler: Default::default(),
            };
            let base = detection_experiment_with(&plan, &config, &cfg);
            let churned = churn_experiment(&plan, &config, &churn, &cfg);
            prop_assert_eq!(
                &base.outcome,
                &churned.outcome.campaign,
                "threads = {}",
                threads
            );
            prop_assert!(churned.outcome.census.is_empty());
            prop_assert_eq!(churned.outcome.trials, 0);
        }
    }

    /// Active churn stays bit-identical across thread counts too — the
    /// census series merges elementwise regardless of which worker ran
    /// which chunk.
    #[test]
    fn active_churn_experiment_is_thread_count_invariant(
        tasks in 100u64..800,
        eps_pct in 20u32..80,
        leave_bp in 1u32..40,  // basis points: 0.0001..0.004 per tick
        fail_bp in 0u32..20,
        campaigns in 1u64..8,
        seed in 0u64..100_000,
    ) {
        let (plan, config) = campaign_shape(tasks, eps_pct, 20, 1, false);
        let churn = ChurnModel {
            enter_rate: 0.5,
            leave_rate: f64::from(leave_bp) / 10_000.0,
            fail_rate: f64::from(fail_bp) / 10_000.0,
            initial_workers: 100,
            horizon: 600,
            census_interval: 200,
        };
        prop_assert!(churn.validate().is_ok());
        let run = |threads| {
            let cfg = ExperimentConfig {
                campaigns,
                seed,
                threads,
                chunk_size: 2,
                sampler: Default::default(),
            };
            churn_experiment(&plan, &config, &churn, &cfg).outcome
        };
        let t1 = run(1);
        let t2 = run(2);
        let t4 = run(4);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(&t1, &t4);
        if churn.is_active() {
            prop_assert_eq!(t1.census.len() as u64, churn.checkpoints());
            prop_assert_eq!(t1.trials, campaigns);
        }
    }

    /// ChurnOutcome::merge is commutative over every counter and the
    /// census series, so chunked folds are order-independent.
    #[test]
    fn churn_outcome_merge_commutes(
        tasks in 100u64..500,
        seeds in vec(0u64..100_000, 2usize),
        campaigns in 1u64..5,
    ) {
        let (plan, config) = campaign_shape(tasks, 50, 20, 1, false);
        let churn = ChurnModel {
            leave_rate: 0.002,
            initial_workers: 80,
            horizon: 400,
            census_interval: 100,
            ..ChurnModel::none()
        };
        let outcome = |seed| {
            churn_experiment(&plan, &config, &churn, &ExperimentConfig::new(campaigns, seed))
                .outcome
        };
        let a = outcome(seeds[0]);
        let b = outcome(seeds[1]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }
}
