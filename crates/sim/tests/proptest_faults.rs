//! Property-based tests for the fault-injection subsystem (proptest).

use proptest::collection::vec;
use proptest::prelude::*;
use redundancy_sim::{deliver_assignment, CampaignOutcome, FaultModel};
use redundancy_stats::DeterministicRng;

/// Build an arbitrary-but-valid outcome from drawn scalars.
///
/// `scalars` feeds every additive counter (including all fault counters);
/// `cheats` and `deficits` populate the per-k vectors and the
/// degraded-multiplicity histogram.
fn outcome_from(scalars: &[u64], cheats: &[(usize, bool)], deficits: &[usize]) -> CampaignOutcome {
    let mut o = CampaignOutcome {
        campaigns: scalars[0],
        tasks: scalars[1],
        assignments: scalars[2],
        wrong_accepted: scalars[3],
        false_flags: scalars[4],
        drops: scalars[5],
        timeouts: scalars[6],
        retries: scalars[7],
        corrupted_returns: scalars[8],
        lost_assignments: scalars[9],
        unresolved_tasks: scalars[10],
        wait_ticks: scalars[11],
        ..CampaignOutcome::default()
    };
    for &(k, detected) in cheats {
        o.record_cheat(k, detected);
    }
    for &d in deficits {
        o.degraded.record(d);
        o.holdings.record(d / 2);
    }
    o
}

/// Decode one drawn pair into (tuple size, detected?).
fn decode_cheats(raw: &[usize]) -> Vec<(usize, bool)> {
    raw.iter().map(|&v| (v / 2, v % 2 == 1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is commutative over every counter, including the fault
    /// telemetry and the degraded histogram.
    #[test]
    fn merge_commutes(
        xs in vec(0u64..10_000, 12usize),
        ys in vec(0u64..10_000, 12usize),
        ca in vec(0usize..16, 5usize),
        cb in vec(0usize..16, 5usize),
        da in vec(0usize..8, 4usize),
        db in vec(0usize..8, 4usize),
    ) {
        let a = outcome_from(&xs, &decode_cheats(&ca), &da);
        let b = outcome_from(&ys, &decode_cheats(&cb), &db);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// merge is associative, so chunked Monte-Carlo folds are independent
    /// of chunk arrival order *and* grouping.
    #[test]
    fn merge_is_associative(
        xs in vec(0u64..10_000, 12usize),
        ys in vec(0u64..10_000, 12usize),
        zs in vec(0u64..10_000, 12usize),
        ca in vec(0usize..16, 5usize),
        cb in vec(0usize..16, 5usize),
        cc in vec(0usize..16, 5usize),
        da in vec(0usize..8, 4usize),
        db in vec(0usize..8, 4usize),
        dc in vec(0usize..8, 4usize),
    ) {
        let a = outcome_from(&xs, &decode_cheats(&ca), &da);
        let b = outcome_from(&ys, &decode_cheats(&cb), &db);
        let c = outcome_from(&zs, &decode_cheats(&cc), &dc);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The zero outcome is a merge identity.
    #[test]
    fn merge_identity(
        xs in vec(0u64..10_000, 12usize),
        ca in vec(0usize..16, 5usize),
        da in vec(0usize..8, 4usize),
    ) {
        let a = outcome_from(&xs, &decode_cheats(&ca), &da);
        let mut merged = a.clone();
        merged.merge(&CampaignOutcome::default());
        prop_assert_eq!(merged, a);
    }

    /// A larger retry budget never loses a delivery the smaller budget
    /// made, for arbitrary fault parameters: the per-attempt draw prefix
    /// is shared, so retry can only *add* returned copies — effective
    /// multiplicity under retries is pointwise >= the no-retry path.
    #[test]
    fn retry_never_lowers_effective_multiplicity(
        drop_pct in 0u32..95,
        straggler_pct in 0u32..95,
        mean_delay in 1u32..40,
        timeout in 1u64..32,
        small_budget in 0u32..3,
        extra_budget in 0u32..6,
        seed in 0u64..10_000,
    ) {
        let base = FaultModel {
            drop_rate: f64::from(drop_pct) / 100.0,
            straggler_rate: f64::from(straggler_pct) / 100.0,
            straggler_mean_delay: f64::from(mean_delay),
            timeout,
            ..FaultModel::none()
        };
        let small = FaultModel { max_retries: small_budget, ..base };
        let large = FaultModel { max_retries: small_budget + extra_budget, ..base };
        prop_assert!(small.validate().is_ok());
        let mut rng = DeterministicRng::new(seed);
        for _ in 0..32 {
            let mut ra = rng.clone();
            let mut rb = rng.clone();
            let ds = deliver_assignment(&small, &mut ra);
            let dl = deliver_assignment(&large, &mut rb);
            prop_assert!(
                u8::from(dl.returned) >= u8::from(ds.returned),
                "budget {} delivered but budget {} lost it",
                small.max_retries,
                large.max_retries
            );
            if ds.returned {
                // Identical replay: same arrival, same corruption flag.
                prop_assert_eq!(ds, dl);
            }
            prop_assert!(dl.retries >= ds.retries || ds.returned);
            rng.next_raw();
        }
    }

    /// Delivery telemetry is internally consistent for arbitrary models:
    /// failed attempts = drops + timeouts, retries never exceed the
    /// budget, and an unreturned assignment used every retry.
    #[test]
    fn delivery_telemetry_is_consistent(
        drop_pct in 0u32..=100,
        straggler_pct in 0u32..=100,
        mean_delay in 1u32..60,
        timeout in 1u64..24,
        budget in 0u32..5,
        seed in 0u64..10_000,
    ) {
        let faults = FaultModel {
            drop_rate: f64::from(drop_pct) / 100.0,
            straggler_rate: f64::from(straggler_pct) / 100.0,
            straggler_mean_delay: f64::from(mean_delay),
            timeout,
            max_retries: budget,
            ..FaultModel::none()
        };
        prop_assert!(faults.validate().is_ok());
        let mut rng = DeterministicRng::new(seed);
        for _ in 0..64 {
            let d = deliver_assignment(&faults, &mut rng);
            let failed_attempts = d.drops + d.timeouts;
            prop_assert!(d.retries <= u64::from(budget));
            if d.returned {
                prop_assert_eq!(d.retries, failed_attempts);
                prop_assert!(d.wait_ticks >= 1);
            } else {
                prop_assert_eq!(failed_attempts, u64::from(budget) + 1);
                prop_assert_eq!(d.retries, u64::from(budget));
                prop_assert!(!d.corrupted);
            }
        }
    }
}
