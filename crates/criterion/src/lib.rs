//! # criterion (offline shim)
//!
//! A dependency-free stand-in for the `criterion` crate, covering the
//! surface `crates/bench` uses: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It is a measurement harness, not a statistics package: each benchmark is
//! warmed up once, then timed over `sample_size` samples, and the median
//! per-iteration time is printed. That is enough to compare hot paths
//! locally without pulling in the real crate's dependency tree.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id.to_string(), f);
        group.finish();
        self
    }
}

/// Identifier combining a function name and a parameter, as in upstream.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units-of-work declaration; recorded for display only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched`; the shim treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare units of work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up pass, untimed.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  ({:.1}M elem/s)", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 / median * 1e3)
            }
            _ => String::new(),
        };
        println!("{}/{id}: median {median:.0} ns/iter{throughput}", self.name);
        self
    }

    /// Time a closure against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (display-only in the shim).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing handle.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iters = 10u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += iters;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let iters = 10u64;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iterations += iters;
    }
}

/// Expose a value to the optimizer as opaque (upstream API parity).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(1);
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::new("sum", 3), &vec![1u64, 2, 3], |b, v| {
            b.iter_batched(
                || v.clone(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("solve", 9).to_string(), "solve/9");
    }
}
