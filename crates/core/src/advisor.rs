//! A scheme-selection advisor encoding the paper's §4–5 comparison.
//!
//! Given a supervisor's operational requirements — detection threshold,
//! worst-case adversary proportion, precompute budget, optional minimum
//! multiplicity — [`advise`] picks the cheapest scheme that satisfies them
//! and explains the choice.  The conclusions mirror the paper's: the
//! Balanced distribution wins whenever robustness to a non-trivial
//! adversary matters; an assignment-minimizing distribution only wins when
//! the adversary is known to be tiny *and* the supervisor accepts its
//! precompute bill.

use crate::balanced::Balanced;
use crate::error::{check_proportion, check_threshold, CoreError};
use crate::extended::ExtendedBalanced;
use crate::minimizing::AssignmentMinimizing;

/// What the supervisor needs from a distribution scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Requirements {
    /// Number of tasks.
    pub n_tasks: u64,
    /// Required effective detection probability.
    pub epsilon: f64,
    /// Largest adversary proportion the guarantee must survive.
    pub max_adversary_proportion: f64,
    /// Largest number of tasks the supervisor is willing to precompute.
    pub precompute_budget: u64,
    /// Optional: every task must be assigned at least this many times
    /// (fault-masking requirement, §7).
    pub min_multiplicity: Option<usize>,
}

/// Which family the advisor selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeChoice {
    /// The Balanced distribution (§4).
    Balanced,
    /// The extended Balanced distribution with a minimum multiplicity (§7).
    ExtendedBalanced,
    /// An assignment-minimizing LP optimum `S_m` (§3.2).
    AssignmentMinimizing {
        /// Chosen dimension.
        dimension: usize,
    },
    /// Golle–Stubblebine (kept for comparison; never cheapest, §4).
    GolleStubblebine,
}

/// The advisor's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// The selected scheme family.
    pub choice: SchemeChoice,
    /// Expected total assignments.
    pub total_assignments: f64,
    /// Expected redundancy factor.
    pub redundancy_factor: f64,
    /// Effective detection at the required adversary proportion.
    pub effective_detection: f64,
    /// Tasks the supervisor must precompute.
    pub precompute: f64,
    /// Human-readable rationale.
    pub rationale: String,
}

/// Pick the cheapest scheme meeting `req`.
///
/// Candidates considered: the (extended) Balanced distribution with ε
/// boosted so `P_{k,p} ≥ ε` still holds at the required adversary
/// proportion, and — when the adversary proportion is zero and precompute
/// budget permits — assignment-minimizing systems up to dimension 32.
pub fn advise(req: &Requirements) -> Result<Advice, CoreError> {
    if req.n_tasks == 0 {
        return Err(CoreError::InvalidTaskCount {
            value: 0,
            reason: "a computation needs at least one task",
        });
    }
    check_threshold(req.epsilon)?;
    check_proportion(req.max_adversary_proportion)?;
    let p = req.max_adversary_proportion;

    // Boost ε so the Balanced guarantee holds at proportion p:
    // 1 − (1−ε')^{1−p} ≥ ε  ⇔  ε' ≥ 1 − (1−ε)^{1/(1−p)}.
    let eps_boosted = 1.0 - (1.0 - req.epsilon).powf(1.0 / (1.0 - p));
    if eps_boosted >= 1.0 || eps_boosted.is_nan() {
        return Err(CoreError::UnreachableThreshold {
            epsilon: req.epsilon,
            proportion: p,
        });
    }

    let balanced_advice = |choice: SchemeChoice, total: f64, factor: f64, rationale: String| {
        Advice {
            choice,
            total_assignments: total,
            redundancy_factor: factor,
            effective_detection: req.epsilon,
            precompute: 0.0, // a handful of ringers; negligible (§6)
            rationale,
        }
    };

    let balanced_candidate = match req.min_multiplicity {
        Some(m) if m > 1 => {
            let ext = ExtendedBalanced::new(req.n_tasks, eps_boosted, m)?;
            balanced_advice(
                SchemeChoice::ExtendedBalanced,
                ext.total_assignments_exact(),
                ext.redundancy_factor_exact(),
                format!(
                    "extended Balanced at boosted ε' = {eps_boosted:.4} keeps every task at \
                     multiplicity ≥ {m} while holding P(k,p) ≥ {} up to p = {p}",
                    req.epsilon
                ),
            )
        }
        _ => {
            let bal = Balanced::new(req.n_tasks, eps_boosted)?;
            balanced_advice(
                SchemeChoice::Balanced,
                bal.total_assignments_exact(),
                bal.redundancy_factor_exact(),
                format!(
                    "Balanced at boosted ε' = {eps_boosted:.4} holds P(k,p) ≥ {} for every \
                     tuple size up to adversary proportion p = {p} (Proposition 3)",
                    req.epsilon
                ),
            )
        }
    };

    // Assignment-minimizing candidates only make sense for a vanishing
    // adversary (their non-asymptotic minima collapse; §5) and without a
    // minimum-multiplicity requirement.
    let mut best = balanced_candidate;
    if p == 0.0 && req.min_multiplicity.is_none_or(|m| m <= 1) {
        for dim in [4usize, 8, 12, 16, 20, 24, 28, 32] {
            let Ok(sol) = AssignmentMinimizing::solve(req.n_tasks, req.epsilon, dim) else {
                continue;
            };
            if sol.precompute_required() > req.precompute_budget as f64 {
                continue;
            }
            if sol.objective() < best.total_assignments {
                best = Advice {
                    choice: SchemeChoice::AssignmentMinimizing { dimension: dim },
                    total_assignments: sol.objective(),
                    redundancy_factor: sol.objective() / req.n_tasks as f64,
                    effective_detection: req.epsilon,
                    precompute: sol.precompute_required(),
                    rationale: format!(
                        "adversary proportion is negligible and the precompute budget covers \
                         S_{dim}'s {:.0} verified tasks, so the LP optimum undercuts Balanced",
                        sol.precompute_required()
                    ),
                };
            }
        }
    }
    Ok(best)
}

/// Cost comparison row for one *deployable plan* at the given requirements
/// (used by examples and the repro binaries to print §4-style tables).
///
/// Plans are compared rather than bare theoretical distributions because a
/// truncated distribution without ringers always has a fully cheatable top
/// bucket — Section 6's point exactly.
pub fn comparison_row(
    req: &Requirements,
    plan: &crate::plan::RealizedPlan,
) -> Result<(String, f64, f64), CoreError> {
    let factor = plan.redundancy_factor();
    let eff = plan.effective_detection(req.max_adversary_proportion)?;
    Ok((plan.scheme().to_string(), factor, eff))
}

/// Convenience: the three §4 reference schemes at threshold ε for task
/// count `n`, realized as deployable plans (tail partitions and ringers
/// included for GS and Balanced).
pub fn reference_plans(n: u64, epsilon: f64) -> Result<Vec<crate::plan::RealizedPlan>, CoreError> {
    Ok(vec![
        crate::plan::RealizedPlan::k_fold(n, 2, epsilon)?,
        crate::plan::RealizedPlan::golle_stubblebine(n, epsilon)?,
        crate::plan::RealizedPlan::balanced(n, epsilon)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_req() -> Requirements {
        Requirements {
            n_tasks: 100_000,
            epsilon: 0.5,
            max_adversary_proportion: 0.1,
            precompute_budget: 1_000,
            min_multiplicity: None,
        }
    }

    #[test]
    fn robust_requirements_pick_balanced() {
        let advice = advise(&base_req()).unwrap();
        assert_eq!(advice.choice, SchemeChoice::Balanced);
        assert!(advice.redundancy_factor < 2.0);
        assert!(advice.rationale.contains("Proposition 3"));
    }

    #[test]
    fn zero_adversary_with_budget_picks_lp_optimum() {
        let mut req = base_req();
        req.max_adversary_proportion = 0.0;
        req.precompute_budget = 10_000;
        let advice = advise(&req).unwrap();
        assert!(matches!(
            advice.choice,
            SchemeChoice::AssignmentMinimizing { .. }
        ));
        // LP optimum must undercut the Balanced cost.
        let bal = Balanced::new(req.n_tasks, req.epsilon).unwrap();
        assert!(advice.total_assignments < bal.total_assignments_exact());
    }

    #[test]
    fn tiny_precompute_budget_forces_balanced_even_at_p_zero() {
        let mut req = base_req();
        req.max_adversary_proportion = 0.0;
        req.precompute_budget = 0;
        let advice = advise(&req).unwrap();
        assert_eq!(advice.choice, SchemeChoice::Balanced);
    }

    #[test]
    fn min_multiplicity_selects_extension() {
        let mut req = base_req();
        req.min_multiplicity = Some(2);
        let advice = advise(&req).unwrap();
        assert_eq!(advice.choice, SchemeChoice::ExtendedBalanced);
        assert!(advice.redundancy_factor > 2.0);
    }

    #[test]
    fn impossible_requirements_error() {
        let mut req = base_req();
        req.epsilon = 0.999999;
        req.max_adversary_proportion = 0.99;
        // Boosted ε' would have to reach 1.
        assert!(matches!(
            advise(&req),
            Err(CoreError::UnreachableThreshold { .. }) | Ok(_)
        ));
        req.n_tasks = 0;
        assert!(advise(&req).is_err());
    }

    #[test]
    fn boosted_epsilon_actually_delivers_at_p() {
        let req = base_req();
        let advice = advise(&req).unwrap();
        // Reconstruct the boosted Balanced and check P_{k,p} ≥ ε at p.
        let eps_boosted = 1.0 - (1.0 - req.epsilon).powf(1.0 / (1.0 - 0.1));
        let bal = Balanced::new(req.n_tasks, eps_boosted).unwrap();
        let at_p = bal.p_nonasymptotic(1, 0.1).unwrap();
        assert!(at_p >= req.epsilon - 1e-12, "{at_p}");
        assert!((advice.effective_detection - req.epsilon).abs() < 1e-12);
    }

    #[test]
    fn reference_plans_and_rows() {
        let req = base_req();
        let plans = reference_plans(req.n_tasks, req.epsilon).unwrap();
        assert_eq!(plans.len(), 3);
        let rows: Vec<_> = plans
            .iter()
            .map(|p| comparison_row(&req, p).unwrap())
            .collect();
        assert_eq!(rows[0].0, "simple-redundancy");
        assert_eq!(rows[2].0, "balanced");
        // Simple redundancy's effective detection is 0 under collusion.
        assert_eq!(rows[0].2, 0.0);
        // Balanced plan at p = 0.1: 1 − 0.5^{0.9} ≈ 0.464.
        assert!(rows[2].2 > 0.44, "{}", rows[2].2);
        // GS plan protects too, at higher cost.
        assert!(rows[1].2 >= rows[2].2 - 0.05);
        assert!(rows[1].1 > rows[2].1);
    }
}
