//! The assignment-minimizing distributions `S_m` (Section 3.2, Fact 1,
//! Figures 1 and 2).
//!
//! `S_m` is the linear program
//!
//! ```text
//! minimize   Σ_{i=1}^{m} i·xᵢ
//! subject to Σ xᵢ ≥ N                                  (C₀)
//!            (1−ε)·Σ_{i=k+1}^{m} C(i,k)·xᵢ ≥ ε·x_k      (C_k, k = 1..m−1)
//!            xᵢ ≥ 0
//! ```
//!
//! Its optimum is the cheapest dimension-`m` distribution meeting every
//! detection constraint an `m`-dimensional distribution *can* meet; the
//! `x_m` bucket cannot satisfy `C_m` by comparison alone and must be
//! **precomputed** by the supervisor (Figure 2's "Precomputing Required"
//! column).  As `m` grows the optimum approaches Proposition 1's
//! `2N/(2−ε)` bound, the precompute requirement falls — and the
//! non-asymptotic detection minima collapse, which is the paper's argument
//! for preferring the Balanced distribution.
//!
//! Every solve is audited with the independent optimality checker from
//! `redundancy-lp` before being returned.

use crate::distribution::Distribution;
use crate::error::{check_threshold, CoreError};
use crate::probability::DetectionProfile;
use crate::scheme::Scheme;
use redundancy_lp::{verify_solution, Problem, Relation, Sense};
use redundancy_stats::special::binomial;

/// Smallest dimension for which `S_m` is a meaningful system.
pub const MIN_DIMENSION: usize = 2;

/// Assemble the `S_m` linear program.  With `budget = Some(z)` the total
/// assignment count is capped at `z` and the objective switches to
/// minimizing the precompute bucket `x_m` (stage 2 of the lexicographic
/// solve).
fn build_system(
    n: u64,
    epsilon: f64,
    dimension: usize,
    budget: Option<f64>,
) -> (Problem, Vec<redundancy_lp::VarId>) {
    let mut lp = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (1..=dimension)
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    let assignment_cost: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64))
        .collect();
    match budget {
        None => {
            for &(v, c) in &assignment_cost {
                lp.set_objective(v, c);
            }
        }
        Some(z) => {
            lp.set_objective(vars[dimension - 1], 1.0);
            lp.add_constraint(&assignment_cost, Relation::Le, z);
        }
    }
    // C₀: Σ xᵢ ≥ N.
    let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&cover, Relation::Ge, n as f64);
    // C_k for k = 1..m−1: (1−ε)·Σ_{i>k} C(i,k)·xᵢ − ε·x_k ≥ 0.
    // Binomial coefficients reach ~10¹¹ at the dimensions Figure 1 sweeps,
    // so each row is normalized by its largest coefficient to keep the
    // simplex well-scaled.
    for k in 1..dimension {
        let mut terms = vec![(vars[k - 1], -epsilon)];
        let mut scale = epsilon;
        for i in (k + 1)..=dimension {
            let coeff = (1.0 - epsilon) * binomial(i as u64, k as u64);
            scale = scale.max(coeff);
            terms.push((vars[i - 1], coeff));
        }
        for (_, c) in &mut terms {
            *c /= scale;
        }
        lp.add_constraint(&terms, Relation::Ge, 0.0);
    }
    (lp, vars)
}

/// Run the independent LP audit, mapping failures into [`CoreError`].
fn audit(lp: &Problem, solution: &redundancy_lp::Solution) -> Result<(), CoreError> {
    let report = verify_solution(lp, solution);
    if report.is_ok(1e-6) {
        Ok(())
    } else {
        Err(CoreError::AuditFailure {
            report: format!("{report:?}"),
        })
    }
}

/// An optimal solution of the system `S_m`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentMinimizing {
    n: u64,
    epsilon: f64,
    dimension: usize,
    distribution: Distribution,
    objective: f64,
    pivots: usize,
}

impl AssignmentMinimizing {
    /// Solve `S_m` for `n` tasks at threshold ε and dimension `m`.
    pub fn solve(n: u64, epsilon: f64, dimension: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        check_threshold(epsilon)?;
        if dimension < MIN_DIMENSION {
            return Err(CoreError::DimensionTooSmall {
                dimension,
                minimum: MIN_DIMENSION,
            });
        }
        let (lp, _vars) = build_system(n, epsilon, dimension, None);
        let solution = lp.solve().map_err(|e| CoreError::LpFailure {
            message: e.to_string(),
        })?;
        audit(&lp, &solution)?;
        let weights: Vec<f64> = solution.values[..dimension].to_vec();
        let distribution = Distribution::from_weights(weights);
        let objective = distribution.total_assignments();
        Ok(AssignmentMinimizing {
            n,
            epsilon,
            dimension,
            distribution,
            objective,
            pivots: solution.pivots,
        })
    }

    /// Like [`AssignmentMinimizing::solve`], but lexicographically refined:
    /// among all assignment-optimal solutions, pick the one with the least
    /// precompute `x_m`.
    ///
    /// The `S_m` optimal face is frequently degenerate — several vertices
    /// share the minimum assignment count but differ wildly in `x_m` (at
    /// `N = 10⁵, ε = ½, m = 6` the precompute ranges from ~320 to ~1923
    /// across the face).  The paper reports plain single-stage vertices
    /// (which [`AssignmentMinimizing::solve`] reproduces); this variant is
    /// our refinement, strictly better for a supervisor with a precompute
    /// budget, and the `ablations` bench quantifies the difference.
    pub fn solve_min_precompute(n: u64, epsilon: f64, dimension: usize) -> Result<Self, CoreError> {
        let base = AssignmentMinimizing::solve(n, epsilon, dimension)?;
        let (lp2, _vars) = build_system(n, epsilon, dimension, Some(base.objective * (1.0 + 1e-9)));
        let Ok(solution) = lp2.solve() else {
            return Ok(base); // numerical edge: keep the stage-1 vertex
        };
        audit(&lp2, &solution)?;
        let weights: Vec<f64> = solution.values[..dimension].to_vec();
        let distribution = Distribution::from_weights(weights);
        let objective = distribution.total_assignments();
        Ok(AssignmentMinimizing {
            n,
            epsilon,
            dimension,
            distribution,
            objective,
            pivots: base.pivots + solution.pivots,
        })
    }

    /// Solve the *equality-augmented* system of Section 5: minimize total
    /// assignments subject to `Σ xᵢ = N` and `P_k = ε` exactly for
    /// `k = 1..m−1`.
    ///
    /// The paper: "when the S systems are augmented so that the solution
    /// must satisfy `P_k = ε`, the resulting optimal solutions are
    /// virtually indistinguishable from the Balanced distribution" — the
    /// `equality_solution_approximates_balanced` test verifies exactly
    /// that, bucket by bucket.
    pub fn solve_with_equalities(
        n: u64,
        epsilon: f64,
        dimension: usize,
    ) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        check_threshold(epsilon)?;
        if dimension < MIN_DIMENSION {
            return Err(CoreError::DimensionTooSmall {
                dimension,
                minimum: MIN_DIMENSION,
            });
        }
        let mut lp = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (1..=dimension)
            .map(|i| lp.add_variable(format!("x{i}")))
            .collect();
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective(*v, (i + 1) as f64);
        }
        let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&cover, Relation::Eq, n as f64);
        for k in 1..dimension {
            let mut terms = vec![(vars[k - 1], -epsilon)];
            let mut scale = epsilon;
            for i in (k + 1)..=dimension {
                let coeff = (1.0 - epsilon) * binomial(i as u64, k as u64);
                scale = scale.max(coeff);
                terms.push((vars[i - 1], coeff));
            }
            for (_, c) in &mut terms {
                *c /= scale;
            }
            lp.add_constraint(&terms, Relation::Eq, 0.0);
        }
        let solution = lp.solve().map_err(|e| CoreError::LpFailure {
            message: e.to_string(),
        })?;
        audit(&lp, &solution)?;
        let weights: Vec<f64> = solution.values[..dimension].to_vec();
        let distribution = Distribution::from_weights(weights);
        let objective = distribution.total_assignments();
        Ok(AssignmentMinimizing {
            n,
            epsilon,
            dimension,
            distribution,
            objective,
            pivots: solution.pivots,
        })
    }

    /// Solve `S_m` for a range of dimensions (the Figure 2 sweep).
    pub fn sweep(
        n: u64,
        epsilon: f64,
        dims: impl IntoIterator<Item = usize>,
    ) -> Result<Vec<Self>, CoreError> {
        dims.into_iter()
            .map(|m| AssignmentMinimizing::solve(n, epsilon, m))
            .collect()
    }

    /// The first dimension `m` from which the optimum's precompute
    /// requirement falls below `limit` *and stays below it* up to
    /// `max_dimension` (how Figure 1 selects `S₉` for `N = 10⁵` and `S₂₆`
    /// for `N = 10⁶` at a 1000-task limit — precompute is not monotone in
    /// `m`, dipping at `S₅` before jumping back at `S₆`, so the stable
    /// crossing is the meaningful one).
    pub fn first_dimension_under_precompute(
        n: u64,
        epsilon: f64,
        limit: f64,
        max_dimension: usize,
    ) -> Result<Option<Self>, CoreError> {
        let sweep = AssignmentMinimizing::sweep(n, epsilon, MIN_DIMENSION..=max_dimension)?;
        let last_violation = sweep.iter().rposition(|s| s.precompute_required() >= limit);
        let first_stable = match last_violation {
            Some(idx) if idx + 1 < sweep.len() => idx + 1,
            Some(_) => return Ok(None),
            None => 0,
        };
        Ok(sweep.into_iter().nth(first_stable))
    }

    /// The detection threshold ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The system dimension `m`.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of tasks the supervisor must precompute: the `x_m` bucket
    /// (its `C_m` constraint cannot be met by comparison).
    pub fn precompute_required(&self) -> f64 {
        self.distribution.weight(self.dimension)
    }

    /// LP objective = total assignments at the optimum.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Simplex pivots the solve took (diagnostic).
    pub fn pivots(&self) -> usize {
        self.pivots
    }

    /// Detection profile with the `x_m` bucket marked precomputed — the
    /// "valid m-dimensional distribution augmented by verification" of
    /// Section 2.2.
    pub fn verified_profile(&self) -> DetectionProfile {
        DetectionProfile::from_distribution(&self.distribution).verify_bucket(self.dimension)
    }

    /// Support of the optimum (multiplicities with nonzero weight).  Fact 1
    /// observes this concentrates on `{1, 2, m}` (occasionally one more
    /// interior point).
    pub fn support(&self) -> Vec<usize> {
        self.distribution.iter().map(|(i, _)| i).collect()
    }
}

impl Scheme for AssignmentMinimizing {
    fn name(&self) -> &'static str {
        "assignment-minimizing"
    }

    fn n_tasks(&self) -> u64 {
        self.n
    }

    fn distribution(&self) -> Distribution {
        self.distribution.clone()
    }

    /// ε, counting the precomputed top bucket (without verification the
    /// guarantee would be 0 at `k = m`).
    fn guaranteed_detection(&self) -> Option<f64> {
        Some(self.epsilon)
    }

    fn detection_profile(&self) -> DetectionProfile {
        self.verified_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        assert!(AssignmentMinimizing::solve(0, 0.5, 5).is_err());
        assert!(AssignmentMinimizing::solve(100, 0.0, 5).is_err());
        assert!(matches!(
            AssignmentMinimizing::solve(100, 0.5, 1),
            Err(CoreError::DimensionTooSmall { .. })
        ));
    }

    #[test]
    fn dimension_two_matches_hand_solution() {
        // S₂: min x₁ + 2x₂ s.t. x₁ + x₂ ≥ N, (1−ε)·2·x₂ ≥ ε·x₁.
        // Equalities bind: x₁ = 2N(1−ε)/(2−ε), x₂ = Nε/(2−ε) — exactly the
        // relaxed optimum of Proposition 1 (dimension 2 has no further
        // constraints).
        let n = 100_000u64;
        let eps = 0.5;
        let sol = AssignmentMinimizing::solve(n, eps, 2).unwrap();
        let d = sol.distribution();
        let x1 = 2.0 * n as f64 * (1.0 - eps) / (2.0 - eps);
        let x2 = n as f64 * eps / (2.0 - eps);
        assert!((d.weight(1) - x1).abs() < 1e-4, "{} vs {x1}", d.weight(1));
        assert!((d.weight(2) - x2).abs() < 1e-4);
        assert!((sol.objective() - 2.0 * n as f64 / (2.0 - eps)).abs() < 1e-3);
    }

    #[test]
    fn optimum_satisfies_all_constraints() {
        let sol = AssignmentMinimizing::solve(100_000, 0.5, 8).unwrap();
        let prof = sol.verified_profile();
        assert!(prof.satisfies_threshold(0.5, 1e-7));
        // Task coverage.
        assert!((sol.distribution().total_tasks() - 100_000.0).abs() < 1e-3);
    }

    #[test]
    fn objective_decreases_toward_lower_bound() {
        let n = 100_000u64;
        let eps = 0.5;
        let bound = crate::bounds::lower_bound_assignments(n, eps).unwrap();
        // S₂ has no C₂ constraint and attains the bound exactly (its whole
        // x₂ bucket is precomputed); every S_m with m ≥ 3 sits strictly
        // above it, approaching as m grows.
        let s2 = AssignmentMinimizing::solve(n, eps, 2).unwrap();
        assert!((s2.objective() - bound).abs() < 1e-3);
        let mut prev = f64::INFINITY;
        for m in [4usize, 8, 16, 24] {
            let sol = AssignmentMinimizing::solve(n, eps, m).unwrap();
            assert!(sol.objective() > bound, "m={m} beats Proposition 1");
            // Global trend is decreasing from m = 4 on (the paper notes the
            // localized S₃→S₄ exception, which our spaced grid avoids).
            assert!(sol.objective() <= prev + 1e-6, "m={m}");
            prev = sol.objective();
        }
        // By m = 24 the optimum is within 1.5% of the bound.
        assert!(prev < bound * 1.015);
    }

    #[test]
    fn support_concentrates_on_one_two_and_top() {
        // Fact 1: most mass on multiplicities 1 and 2, a small top bucket.
        let sol = AssignmentMinimizing::solve(100_000, 0.5, 16).unwrap();
        let support = sol.support();
        assert!(support.contains(&1));
        assert!(support.contains(&2));
        assert!(support.contains(&16));
        // Interior support is at most one extra point.
        let interior: Vec<_> = support.iter().filter(|&&i| i > 2 && i < 16).collect();
        assert!(interior.len() <= 1, "support {support:?}");
        let d = sol.distribution();
        let mass12 = d.weight(1) + d.weight(2);
        assert!(mass12 / d.total_tasks() > 0.95, "mass at 1,2 = {mass12}");
    }

    #[test]
    fn precompute_required_falls_with_dimension() {
        let hi = AssignmentMinimizing::solve(100_000, 0.5, 6)
            .unwrap()
            .precompute_required();
        let lo = AssignmentMinimizing::solve(100_000, 0.5, 20)
            .unwrap()
            .precompute_required();
        assert!(lo < hi, "{lo} vs {hi}");
    }

    #[test]
    fn paper_figure2_precompute_anchors() {
        // The two precompute values whose digits survived the paper's OCR:
        // S₅ requires 602 tasks and S₆ jumps to 1923 (N = 10⁵, ε = ½) — the
        // "localized exception" of Section 3.2.
        let s5 = AssignmentMinimizing::solve(100_000, 0.5, 5).unwrap();
        assert!(
            (s5.precompute_required() - 602.41).abs() < 0.5,
            "{}",
            s5.precompute_required()
        );
        let s6 = AssignmentMinimizing::solve(100_000, 0.5, 6).unwrap();
        assert!(
            (s6.precompute_required() - 1923.08).abs() < 0.5,
            "{}",
            s6.precompute_required()
        );
        assert!(s6.precompute_required() > s5.precompute_required());
    }

    #[test]
    fn paper_s3_to_s4_factor_increase() {
        // Section 3.2's other localized exception: the redundancy factor
        // rises between S₃ and S₄.
        let s3 = AssignmentMinimizing::solve(100_000, 0.5, 3).unwrap();
        let s4 = AssignmentMinimizing::solve(100_000, 0.5, 4).unwrap();
        assert!(s4.objective() > s3.objective());
    }

    #[test]
    fn min_precompute_refinement_never_worse() {
        for m in [5usize, 6, 8, 12] {
            let base = AssignmentMinimizing::solve(100_000, 0.5, m).unwrap();
            let refined = AssignmentMinimizing::solve_min_precompute(100_000, 0.5, m).unwrap();
            assert!(
                refined.precompute_required() <= base.precompute_required() + 1e-6,
                "m={m}: refined {} vs base {}",
                refined.precompute_required(),
                base.precompute_required()
            );
            assert!((refined.objective() - base.objective()).abs() < base.objective() * 1e-6);
            assert!(refined.verified_profile().satisfies_threshold(0.5, 1e-6));
        }
        // At m = 6 the refinement is dramatic: 1923 → ~320.
        let refined = AssignmentMinimizing::solve_min_precompute(100_000, 0.5, 6).unwrap();
        assert!(
            refined.precompute_required() < 400.0,
            "{}",
            refined.precompute_required()
        );
    }

    #[test]
    fn first_dimension_under_precompute_finds_fig1_systems() {
        // Figure 1: S₉ is the first system stably needing < 1000
        // precomputed tasks at N = 10⁵ (ε = ½): the sequence runs
        // S₅ = 602 (transient dip), S₆ = 1923, S₇ = 1408, S₈ = 1075,
        // S₉ = 847 and decreasing thereafter.
        let sol = AssignmentMinimizing::first_dimension_under_precompute(100_000, 0.5, 1000.0, 30)
            .unwrap()
            .unwrap();
        assert_eq!(sol.dimension(), 9, "expected the paper's S₉");
        assert!((sol.precompute_required() - 847.46).abs() < 1.0);
    }

    #[test]
    fn nonasymptotic_minimum_collapses_with_p() {
        // Section 5 / Figure 2: the LP optima lose detection power fast as
        // the adversary's proportion grows, unlike Balanced.
        let sol = AssignmentMinimizing::solve(100_000, 0.5, 16).unwrap();
        let prof = sol.verified_profile();
        let at0 = prof.effective_detection(0.0).unwrap();
        let at15 = prof.effective_detection(0.15).unwrap();
        assert!(at0 >= 0.5 - 1e-7);
        assert!(at15 < 0.35, "min P at p=0.15 is {at15}");
        // Balanced at the same p only drops to 1 − 0.5^{0.85} ≈ 0.445.
        let bal = crate::balanced::Balanced::new(100_000, 0.5).unwrap();
        assert!(bal.p_nonasymptotic(1, 0.15).unwrap() > at15);
    }

    #[test]
    fn equality_solution_approximates_balanced() {
        // Section 5: equality-augmented optima ≈ the Balanced distribution.
        let n = 1_000_000u64;
        let eps = 0.5;
        let dim = 12usize;
        let sol = AssignmentMinimizing::solve_with_equalities(n, eps, dim).unwrap();
        let bal = crate::balanced::Balanced::new(n, eps).unwrap();
        // Bucket-by-bucket agreement over the meaningful range (the last
        // couple of buckets absorb the truncated Poisson tail).
        for i in 1..=dim - 3 {
            let got = sol.distribution().weight(i);
            let want = bal.ideal_weight(i);
            let rel = (got - want).abs() / want.max(1.0);
            assert!(rel < 0.01, "i={i}: LP {got} vs Balanced {want}");
        }
        // And the costs agree to a fraction of a percent.
        let rel_cost =
            (sol.objective() - bal.total_assignments_exact()).abs() / bal.total_assignments_exact();
        assert!(rel_cost < 5e-3, "cost gap {rel_cost}");
        // Equality system costs MORE than the plain S_m optimum (it gave up
        // the freedom to over-cover cheaply)...
        let plain = AssignmentMinimizing::solve(n, eps, dim).unwrap();
        assert!(sol.objective() > plain.objective());
        // ...and every constraint is met with equality.
        let prof = DetectionProfile::from_distribution(&sol.distribution());
        for k in 1..=dim - 3 {
            let pk = prof.p_asymptotic(k).unwrap();
            assert!((pk - eps).abs() < 1e-6, "k={k}: {pk}");
        }
    }

    #[test]
    fn sweep_returns_one_solution_per_dimension() {
        let sols = AssignmentMinimizing::sweep(10_000, 0.5, [2, 3, 4]).unwrap();
        assert_eq!(sols.len(), 3);
        assert_eq!(sols[0].dimension(), 2);
        assert_eq!(sols[2].dimension(), 4);
    }
}
