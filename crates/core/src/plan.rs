//! Realizing a theoretical distribution on a real platform (Section 6).
//!
//! The ideal weights `aᵢ` are fractional and extend to arbitrarily large
//! multiplicities; a deployed supervisor needs integers and a cap.  The
//! paper's adaptation, implemented here as [`RealizedPlan`]:
//!
//! 1. round each `aᵢ` **down** to an integer;
//! 2. stop at `i_f`, the first multiplicity whose ideal weight drops below
//!    one (`i_f = O(log((1−ε)N/ε))`);
//! 3. sweep all still-unassigned tasks into a **tail partition** at
//!    multiplicity `i_f` (a handful of tasks — Lagrange's remainder bounds
//!    it by roughly `i_f + 1/(1−γ/i_f)`);
//! 4. add `r` precomputed **ringer** tasks at multiplicity `i_f + 1`, with
//!    `r` the smallest integer restoring `P_k ≥ ε` for every `k` — in
//!    particular `k = i_f`, which comparison alone cannot protect.  The
//!    paper's closed form is `r > ε·x_{i_f} / ((1−ε)(i_f+1))`; the
//!    implementation computes the requirement from the generic tuple
//!    counts so rounding effects at every `k` are covered too.
//!
//! Worked examples from the paper, reproduced in the tests below:
//! `N = 10⁷, ε = 0.99` gives `i_f = 20`, a 12-task tail (240 of ~4.65 M
//! assignments) and 57 ringers; `N = 10⁶, ε = 0.75` gives `i_f = 11`, a
//! 5-task tail and 2 ringers.

use crate::balanced::Balanced;
use crate::distribution::Distribution;
use crate::error::{check_threshold, CoreError};
use crate::golle_stubblebine::GolleStubblebine;
use crate::minimizing::AssignmentMinimizing;
use crate::probability::DetectionProfile;
use crate::scheme::Scheme;
use redundancy_stats::special::binomial;

/// Why a partition exists in a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Floor of an ideal weight bucket.
    Normal,
    /// The sweep-up of leftover tasks at multiplicity `i_f`.
    Tail,
    /// Supervisor-precomputed ringer tasks.
    Ringer,
    /// Ordinary tasks whose results the supervisor verifies directly (the
    /// top bucket of an assignment-minimizing distribution).
    Verified,
}

/// A group of `tasks` tasks all assigned with the same `multiplicity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Copies handed out per task.
    pub multiplicity: usize,
    /// Number of tasks in this partition.
    pub tasks: u64,
    /// Provenance/treatment of the partition.
    pub kind: PartitionKind,
}

/// An integral, deployable task-distribution plan.
///
/// ```
/// use redundancy_core::RealizedPlan;
/// // The paper's §6 "typical" example: N = 10⁶, ε = 0.75.
/// let plan = RealizedPlan::balanced(1_000_000, 0.75)?;
/// assert_eq!(plan.tail_multiplicity(), Some(11));
/// assert_eq!(plan.tail_tasks(), 5);
/// assert_eq!(plan.ringer_tasks(), 2);
/// assert!(plan.effective_detection(0.0)? >= 0.75);
/// # Ok::<(), redundancy_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedPlan {
    scheme: String,
    n_tasks: u64,
    epsilon: f64,
    partitions: Vec<Partition>,
}

impl RealizedPlan {
    /// Realize an arbitrary ideal weight function (Section 6's procedure).
    ///
    /// `ideal(i)` must be the scheme's theoretical `aᵢ` (non-negative,
    /// eventually `< 1` and decreasing to zero).
    pub fn from_ideal_weights(
        scheme: impl Into<String>,
        n: u64,
        epsilon: f64,
        ideal: impl Fn(usize) -> f64,
    ) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        check_threshold(epsilon)?;
        let mut partitions = Vec::new();
        let mut assigned = 0u64;
        let mut i = 1usize;
        let i_f = loop {
            let a = ideal(i);
            assert!(a.is_finite() && a >= 0.0, "ideal weight a_{i} = {a}");
            if a < 1.0 {
                break i;
            }
            let count = (a.floor() as u64).min(n - assigned);
            if count > 0 {
                partitions.push(Partition {
                    multiplicity: i,
                    tasks: count,
                    kind: PartitionKind::Normal,
                });
                assigned += count;
            }
            if assigned == n {
                break i + 1;
            }
            i += 1;
            assert!(i <= 100_000, "ideal weights never fell below 1");
        };
        let leftover = n - assigned;
        if leftover > 0 {
            partitions.push(Partition {
                multiplicity: i_f,
                tasks: leftover,
                kind: PartitionKind::Tail,
            });
        }
        let mut plan = RealizedPlan {
            scheme: scheme.into(),
            n_tasks: n,
            epsilon,
            partitions,
        };
        let ringers = plan.required_ringers();
        if ringers > 0 {
            let top = plan.max_multiplicity();
            plan.partitions.push(Partition {
                multiplicity: top + 1,
                tasks: ringers,
                kind: PartitionKind::Ringer,
            });
        }
        Ok(plan)
    }

    /// Realize the Balanced distribution (the paper's recommended
    /// deployment).
    pub fn balanced(n: u64, epsilon: f64) -> Result<Self, CoreError> {
        let scheme = Balanced::new(n, epsilon)?;
        RealizedPlan::from_ideal_weights("balanced", n, epsilon, |i| scheme.ideal_weight(i))
    }

    /// Realize the Golle–Stubblebine distribution tuned for threshold ε
    /// (Figure 4's middle column: same tail/ringer treatment as Balanced).
    pub fn golle_stubblebine(n: u64, epsilon: f64) -> Result<Self, CoreError> {
        let scheme = GolleStubblebine::for_threshold(n, epsilon)?;
        let c = scheme.ratio();
        RealizedPlan::from_ideal_weights("golle-stubblebine", n, epsilon, move |i| {
            (1.0 - c) * c.powi(i as i32 - 1) * n as f64
        })
    }

    /// Plain m-fold redundancy as a plan (no tail, no ringers — and no
    /// collusion guarantee; its nominal ε is recorded as given for
    /// comparison tables).
    pub fn k_fold(n: u64, multiplicity: usize, nominal_epsilon: f64) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        if multiplicity == 0 {
            return Err(CoreError::InvalidMinMultiplicity {
                value: multiplicity,
            });
        }
        check_threshold(nominal_epsilon)?;
        Ok(RealizedPlan {
            scheme: if multiplicity == 2 {
                "simple-redundancy".into()
            } else {
                "k-fold-redundancy".into()
            },
            n_tasks: n,
            epsilon: nominal_epsilon,
            partitions: vec![Partition {
                multiplicity,
                tasks: n,
                kind: PartitionKind::Normal,
            }],
        })
    }

    /// Integerize an assignment-minimizing LP optimum.  Buckets are floored
    /// and every leftover task joins the verified top bucket (conservative:
    /// verification only strengthens detection).
    pub fn from_minimizing(sol: &AssignmentMinimizing) -> Result<Self, CoreError> {
        let dist = sol.distribution();
        let n = sol.n_tasks();
        let dim = sol.dimension();
        let mut partitions = Vec::new();
        let mut assigned = 0u64;
        for i in 1..dim {
            let count = dist.weight(i).floor() as u64;
            let count = count.min(n - assigned);
            if count > 0 {
                partitions.push(Partition {
                    multiplicity: i,
                    tasks: count,
                    kind: PartitionKind::Normal,
                });
                assigned += count;
            }
        }
        let top = n - assigned;
        if top > 0 {
            partitions.push(Partition {
                multiplicity: dim,
                tasks: top,
                kind: PartitionKind::Verified,
            });
        }
        Ok(RealizedPlan {
            scheme: "assignment-minimizing".into(),
            n_tasks: n,
            epsilon: sol.epsilon(),
            partitions,
        })
    }

    /// Name of the underlying scheme.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Ordinary task count (the computation's `N`; excludes ringers).
    pub fn n_tasks(&self) -> u64 {
        self.n_tasks
    }

    /// The detection threshold the plan was built for.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// All partitions, in ascending multiplicity order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Largest multiplicity over non-ringer partitions (the paper's `i_f`
    /// when a tail exists).
    pub fn max_multiplicity(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.kind != PartitionKind::Ringer)
            .map(|p| p.multiplicity)
            .max()
            .unwrap_or(0)
    }

    /// The tail partition's multiplicity `i_f`, if a tail exists.
    pub fn tail_multiplicity(&self) -> Option<usize> {
        self.partitions
            .iter()
            .find(|p| p.kind == PartitionKind::Tail)
            .map(|p| p.multiplicity)
    }

    /// Number of tasks in the tail partition (0 if none).
    pub fn tail_tasks(&self) -> u64 {
        self.partitions
            .iter()
            .filter(|p| p.kind == PartitionKind::Tail)
            .map(|p| p.tasks)
            .sum()
    }

    /// Number of ringer tasks (0 if none).
    pub fn ringer_tasks(&self) -> u64 {
        self.partitions
            .iter()
            .filter(|p| p.kind == PartitionKind::Ringer)
            .map(|p| p.tasks)
            .sum()
    }

    /// Tasks the supervisor must compute itself (ringers + verified).
    pub fn precomputed_tasks(&self) -> u64 {
        self.partitions
            .iter()
            .filter(|p| matches!(p.kind, PartitionKind::Ringer | PartitionKind::Verified))
            .map(|p| p.tasks)
            .sum()
    }

    /// Total assignments including ringer copies.
    pub fn total_assignments(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.multiplicity as u64 * p.tasks)
            .sum()
    }

    /// Redundancy factor: assignments per ordinary task.
    pub fn redundancy_factor(&self) -> f64 {
        self.total_assignments() as f64 / self.n_tasks as f64
    }

    /// The plan's task counts as a [`Distribution`] (ringers included).
    pub fn distribution(&self) -> Distribution {
        let dim = self
            .partitions
            .iter()
            .map(|p| p.multiplicity)
            .max()
            .unwrap_or(0);
        let mut weights = vec![0.0; dim];
        for p in &self.partitions {
            weights[p.multiplicity - 1] += p.tasks as f64;
        }
        Distribution::from_weights(weights)
    }

    /// Detection profile: ringers and verified buckets count as
    /// precomputed.
    pub fn detection_profile(&self) -> DetectionProfile {
        let mut profile = DetectionProfile::from_normal(vec![]);
        for p in &self.partitions {
            profile = match p.kind {
                PartitionKind::Ringer | PartitionKind::Verified => {
                    profile.with_precomputed(p.multiplicity, p.tasks as f64)
                }
                _ => profile.merge_normal(p.multiplicity, p.tasks as f64),
            };
        }
        profile
    }

    /// Effective detection probability at adversary proportion `p`.
    pub fn effective_detection(&self, p: f64) -> Result<f64, CoreError> {
        self.detection_profile().effective_detection(p)
    }

    /// Smallest ringer count making `P_k ≥ ε` for every `k` (ringers placed
    /// at `max_multiplicity() + 1`).
    fn required_ringers(&self) -> u64 {
        let top = self.max_multiplicity();
        if top == 0 {
            return 0;
        }
        let ringer_mult = top + 1;
        // Ordinary (non-precomputed) counts per multiplicity.
        let mut counts = vec![0.0f64; top + 1];
        for p in &self.partitions {
            if !matches!(p.kind, PartitionKind::Ringer | PartitionKind::Verified) {
                counts[p.multiplicity] += p.tasks as f64;
            }
        }
        let eps = self.epsilon;
        let mut needed = 0.0f64;
        for k in 1..=top {
            let undetected = counts[k];
            if undetected == 0.0 {
                continue;
            }
            // Σ_{i≥k} C(i,k)·n_i over ordinary tasks.
            let mut tuples = 0.0;
            for (i, &c) in counts.iter().enumerate().skip(k) {
                if c > 0.0 {
                    tuples += binomial(i as u64, k as u64) * c;
                }
            }
            // Need undetected ≤ (1−ε)(tuples + C(r_mult, k)·r).
            let deficit = undetected / (1.0 - eps) - tuples;
            if deficit > 0.0 {
                needed = needed.max(deficit / binomial(ringer_mult as u64, k as u64));
            }
        }
        needed.ceil() as u64
    }
}

// ---------------------------------------------------------------------------
// JSON (redundancy-json) — plans are the workspace's on-disk artifact format.
// ---------------------------------------------------------------------------

use redundancy_json::{num_u64, obj, FromJson, Json, JsonError, ToJson};

impl ToJson for PartitionKind {
    fn to_json(&self) -> Json {
        let name = match self {
            PartitionKind::Normal => "Normal",
            PartitionKind::Tail => "Tail",
            PartitionKind::Ringer => "Ringer",
            PartitionKind::Verified => "Verified",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for PartitionKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Normal") => Ok(PartitionKind::Normal),
            Some("Tail") => Ok(PartitionKind::Tail),
            Some("Ringer") => Ok(PartitionKind::Ringer),
            Some("Verified") => Ok(PartitionKind::Verified),
            _ => Err(JsonError::Schema(format!(
                "unknown partition kind {value:?}"
            ))),
        }
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> Json {
        obj(vec![
            ("multiplicity", num_u64(self.multiplicity as u64)),
            ("tasks", num_u64(self.tasks)),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for Partition {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Partition {
            multiplicity: value.field_u64("multiplicity")? as usize,
            tasks: value.field_u64("tasks")?,
            kind: PartitionKind::from_json(value.field("kind")?)?,
        })
    }
}

impl ToJson for RealizedPlan {
    fn to_json(&self) -> Json {
        obj(vec![
            ("scheme", Json::Str(self.scheme.clone())),
            ("n_tasks", num_u64(self.n_tasks)),
            ("epsilon", Json::Num(self.epsilon)),
            ("partitions", self.partitions.to_json()),
        ])
    }
}

impl FromJson for RealizedPlan {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RealizedPlan {
            scheme: value.field_str("scheme")?.to_string(),
            n_tasks: value.field_u64("n_tasks")?,
            epsilon: value.field_f64("epsilon")?,
            partitions: Vec::<Partition>::from_json(value.field("partitions")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_extreme_n1e7_eps099() {
        // Section 6: N = 10⁷, ε = 0.99 → i_f = 20, tail 12 tasks (240
        // assignments), 57 ringers, ~4.65 M total assignments.
        let plan = RealizedPlan::balanced(10_000_000, 0.99).unwrap();
        assert_eq!(plan.tail_multiplicity(), Some(20));
        assert_eq!(plan.tail_tasks(), 12);
        assert_eq!(plan.ringer_tasks(), 57);
        // Ideal total is N·γ/ε = 10⁷·ln(100)/0.99 ≈ 46.52 M; the OCR's
        // "4,65?,?88 total assignments" lost a digit group.
        let total = plan.total_assignments();
        assert!(
            (46_400_000..46_600_000).contains(&total),
            "total assignments {total}"
        );
        // Tail cost: 12 × 20 = 240 assignments, negligible.
        assert_eq!(plan.tail_tasks() * 20, 240);
    }

    #[test]
    fn paper_example_typical_n1e6_eps075() {
        // Section 6: N = 10⁶, ε = 0.75 → i_f = 11, tail 5 tasks, 2 ringers.
        let plan = RealizedPlan::balanced(1_000_000, 0.75).unwrap();
        assert_eq!(plan.tail_multiplicity(), Some(11));
        assert_eq!(plan.tail_tasks(), 5);
        assert_eq!(plan.ringer_tasks(), 2);
    }

    #[test]
    fn plan_covers_every_task_exactly() {
        for (n, eps) in [(1_000u64, 0.5), (100_000, 0.75), (12_345, 0.6)] {
            let plan = RealizedPlan::balanced(n, eps).unwrap();
            let ordinary: u64 = plan
                .partitions()
                .iter()
                .filter(|p| p.kind != PartitionKind::Ringer)
                .map(|p| p.tasks)
                .sum();
            assert_eq!(ordinary, n, "N={n}, ε={eps}");
        }
    }

    #[test]
    fn plan_meets_threshold_at_every_k() {
        for (n, eps) in [(100_000u64, 0.5), (1_000_000, 0.75), (50_000, 0.9)] {
            let plan = RealizedPlan::balanced(n, eps).unwrap();
            let prof = plan.detection_profile();
            assert!(
                prof.satisfies_threshold(eps, 1e-9),
                "N={n}, ε={eps}: effective {}",
                prof.effective_detection(0.0).unwrap()
            );
        }
    }

    #[test]
    fn ringers_match_paper_closed_form() {
        // r = ⌈ε·x_{i_f} / ((1−ε)(i_f+1))⌉ when only the top bucket binds.
        let plan = RealizedPlan::balanced(10_000_000, 0.99).unwrap();
        let x_if = plan.tail_tasks() as f64;
        let i_f = plan.tail_multiplicity().unwrap() as f64;
        let r_formula = (0.99 * x_if / (0.01 * (i_f + 1.0))).ceil() as u64;
        assert_eq!(plan.ringer_tasks(), r_formula);
    }

    #[test]
    fn gs_plan_has_tail_and_ringers_too() {
        // Figure 4's GS column receives the same tail + ringer treatment.
        let plan = RealizedPlan::golle_stubblebine(1_000_000, 0.75).unwrap();
        assert!(plan.tail_tasks() > 0);
        assert!(plan.ringer_tasks() > 0);
        assert!(plan.detection_profile().satisfies_threshold(0.75, 1e-9));
        // GS costs more than Balanced at the same ε (Figure 4: > 50k more).
        let bal = RealizedPlan::balanced(1_000_000, 0.75).unwrap();
        assert!(
            plan.total_assignments() > bal.total_assignments() + 50_000,
            "GS {} vs balanced {}",
            plan.total_assignments(),
            bal.total_assignments()
        );
    }

    #[test]
    fn k_fold_plan_is_flat() {
        let plan = RealizedPlan::k_fold(1_000, 2, 0.5).unwrap();
        assert_eq!(plan.total_assignments(), 2_000);
        assert_eq!(plan.ringer_tasks(), 0);
        assert_eq!(plan.tail_tasks(), 0);
        assert_eq!(plan.effective_detection(0.0).unwrap(), 0.0);
    }

    #[test]
    fn minimizing_plan_is_verified_on_top() {
        let sol = AssignmentMinimizing::solve(100_000, 0.5, 10).unwrap();
        let plan = RealizedPlan::from_minimizing(&sol).unwrap();
        assert!(plan.precomputed_tasks() > 0);
        let ordinary: u64 = plan.partitions().iter().map(|p| p.tasks).sum();
        assert_eq!(ordinary, 100_000);
        assert!(plan.detection_profile().satisfies_threshold(0.5, 1e-6));
    }

    #[test]
    fn balanced_realization_cost_is_near_ideal() {
        let n = 1_000_000u64;
        let eps = 0.75;
        let plan = RealizedPlan::balanced(n, eps).unwrap();
        let ideal = Balanced::new(n, eps).unwrap().total_assignments_exact();
        let rel = (plan.total_assignments() as f64 - ideal).abs() / ideal;
        assert!(
            rel < 1e-3,
            "realized {} vs ideal {ideal}",
            plan.total_assignments()
        );
    }

    #[test]
    fn small_n_edge_case_still_valid() {
        let plan = RealizedPlan::balanced(100, 0.5).unwrap();
        let ordinary: u64 = plan
            .partitions()
            .iter()
            .filter(|p| p.kind != PartitionKind::Ringer)
            .map(|p| p.tasks)
            .sum();
        assert_eq!(ordinary, 100);
        assert!(plan.detection_profile().satisfies_threshold(0.5, 1e-9));
    }

    #[test]
    fn parameter_validation() {
        assert!(RealizedPlan::balanced(0, 0.5).is_err());
        assert!(RealizedPlan::k_fold(10, 0, 0.5).is_err());
        assert!(RealizedPlan::k_fold(0, 2, 0.5).is_err());
    }

    #[test]
    fn json_round_trip() {
        let plan = RealizedPlan::balanced(10_000, 0.5).unwrap();
        let json = redundancy_json::to_string(&plan);
        let back: RealizedPlan = redundancy_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn partitions_report_consistent_totals() {
        let plan = RealizedPlan::balanced(250_000, 0.6).unwrap();
        let manual: u64 = plan
            .partitions()
            .iter()
            .map(|p| p.multiplicity as u64 * p.tasks)
            .sum();
        assert_eq!(manual, plan.total_assignments());
        let d = plan.distribution();
        assert!((d.total_assignments() - manual as f64).abs() < 1e-6);
    }
}
