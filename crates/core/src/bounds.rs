//! Theoretical bounds and optimality properties (Propositions 1 and 2).
//!
//! **Proposition 1.** Any valid distribution (satisfying `C₀` and `C₁` at
//! threshold ε) requires strictly more than `2N/(2−ε)` assignments; the
//! relaxed system keeping only those two constraints has the unique optimum
//!
//! ```text
//! x₁ = 2N(1−ε)/(2−ε),   x₂ = Nε/(2−ε),
//! ```
//!
//! so the optimal redundancy factor is bounded below by `2/(2−ε)` (= 4/3 at
//! ε = ½).  The full systems `S_m` approach but never attain it.
//!
//! **Proposition 2.** Among distributions whose non-asymptotic detection
//! `P_{k,p}` is independent of `k` (the "efficient" ones — any variation
//! with `k` means wasted assignments), the cheapest must achieve *equality*
//! `P_k = ε` in every constraint.  The Balanced distribution does exactly
//! that; [`equality_gap`] measures how far any other distribution is from
//! the property.

use crate::distribution::Distribution;
use crate::error::{check_threshold, CoreError};
use crate::probability::DetectionProfile;

/// Proposition 1's lower bound on the redundancy factor: `2/(2−ε)`.
pub fn lower_bound_factor(epsilon: f64) -> Result<f64, CoreError> {
    check_threshold(epsilon)?;
    Ok(2.0 / (2.0 - epsilon))
}

/// Proposition 1's lower bound on total assignments: `2N/(2−ε)`.
pub fn lower_bound_assignments(n: u64, epsilon: f64) -> Result<f64, CoreError> {
    Ok(n as f64 * lower_bound_factor(epsilon)?)
}

/// The unique optimum of the relaxed system (constraints `C₀`, `C₁` only):
/// `x₁ = 2N(1−ε)/(2−ε)`, `x₂ = Nε/(2−ε)`.
///
/// This distribution achieves the Proposition 1 bound but is *not* a valid
/// distribution (its `P₂ = 0`), which is exactly why the bound is strict.
pub fn relaxed_optimum(n: u64, epsilon: f64) -> Result<Distribution, CoreError> {
    check_threshold(epsilon)?;
    let nf = n as f64;
    let x1 = 2.0 * nf * (1.0 - epsilon) / (2.0 - epsilon);
    let x2 = nf * epsilon / (2.0 - epsilon);
    Ok(Distribution::from_weights(vec![x1, x2]))
}

/// Maximum deviation `max_k |P_k − ε|` over `k = 1..=k_max`, the measure of
/// Proposition 2's equality property (0 for the Balanced distribution).
///
/// `k` values with no tuples at all (beyond the distribution's dimension)
/// are skipped; `k` values where `P_k > ε` count toward the gap because
/// over-protection is wasted resources (Section 5).
pub fn equality_gap(
    profile: &DetectionProfile,
    epsilon: f64,
    k_max: usize,
) -> Result<f64, CoreError> {
    check_threshold(epsilon)?;
    let mut gap = 0.0f64;
    for k in 1..=k_max {
        if let Some(pk) = profile.p_asymptotic(k) {
            gap = gap.max((pk - epsilon).abs());
        }
    }
    Ok(gap)
}

/// Section 5's waste metric: assignments a profile spends beyond what its
/// *effective* protection level warrants.
///
/// The effective detection of a profile is `ε_eff = min_k P_k`; the
/// cheapest practical distribution delivering `ε_eff` for every tuple size
/// is the Balanced distribution at `ε_eff`, costing
/// `N·ln(1/(1−ε_eff))/ε_eff`.  Anything above that is "extra resources
/// [that] increase computation costs without increasing protection and are
/// thus effectively wasted" — e.g. Golle–Stubblebine's over-protection of
/// large tuples.
///
/// Returns `(ε_eff, wasted_assignments)`; the waste is clamped at 0 (the
/// Balanced distribution itself measures as 0 up to truncation dust).
pub fn wasted_assignments(profile: &DetectionProfile) -> Result<(f64, f64), CoreError> {
    let eps_eff = profile.effective_detection(0.0)?;
    let n = profile.total_tasks();
    if !(0.0 < eps_eff && eps_eff < 1.0) || n == 0.0 {
        // No guarantee at all: every redundant assignment beyond 1 per task
        // buys nothing against a colluder who can take whole tasks.
        return Ok((eps_eff.max(0.0), (profile.total_assignments() - n).max(0.0)));
    }
    let optimal = n * (1.0 / (1.0 - eps_eff)).ln() / eps_eff;
    Ok((eps_eff, (profile.total_assignments() - optimal).max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced::Balanced;
    use crate::golle_stubblebine::GolleStubblebine;
    use crate::scheme::Scheme;

    #[test]
    fn bound_at_half_is_four_thirds() {
        let b = lower_bound_factor(0.5).unwrap();
        assert!((b - 4.0 / 3.0).abs() < 1e-15);
        assert!((lower_bound_assignments(300_000, 0.5).unwrap() - 400_000.0).abs() < 1e-6);
    }

    #[test]
    fn bound_is_monotone_in_eps() {
        let mut prev = 1.0;
        for i in 1..100 {
            let eps = i as f64 / 100.0;
            let b = lower_bound_factor(eps).unwrap();
            assert!(b > prev);
            prev = b;
        }
        assert!(lower_bound_factor(0.0).is_err());
    }

    #[test]
    fn relaxed_optimum_meets_c0_and_c1_with_equality() {
        let n = 100_000u64;
        let eps = 0.5;
        let d = relaxed_optimum(n, eps).unwrap();
        // C₀ equality.
        assert!((d.total_tasks() - n as f64).abs() < 1e-6);
        // C₁ equality: P₁ = ε.
        let prof = DetectionProfile::from_distribution(&d);
        assert!((prof.p_asymptotic(1).unwrap() - eps).abs() < 1e-12);
        // Achieves the bound exactly.
        let bound = lower_bound_assignments(n, eps).unwrap();
        assert!((d.total_assignments() - bound).abs() < 1e-6);
        // …but is invalid: P₂ = 0.
        assert_eq!(prof.p_asymptotic(2), Some(0.0));
    }

    #[test]
    fn every_scheme_respects_the_lower_bound() {
        let n = 1_000_000u64;
        for eps in [0.25, 0.5, 0.75, 0.9] {
            let bound = lower_bound_assignments(n, eps).unwrap();
            let bal = Balanced::new(n, eps).unwrap();
            assert!(bal.total_assignments_exact() > bound, "balanced at ε={eps}");
            let gs = GolleStubblebine::for_threshold(n, eps).unwrap();
            assert!(gs.total_assignments_exact() > bound, "GS at ε={eps}");
        }
    }

    #[test]
    fn balanced_has_zero_equality_gap() {
        let bal = Balanced::new(1_000_000, 0.5).unwrap();
        let prof = bal.detection_profile();
        // Restrict to the front half of the multiplicity range, where the
        // tail truncation of the materialized distribution is negligible.
        let gap = equality_gap(&prof, 0.5, prof.dimension() / 2).unwrap();
        assert!(gap < 1e-4, "gap {gap}");
    }

    #[test]
    fn waste_metric_orders_schemes_correctly() {
        let n = 1_000_000u64;
        let eps = 0.5;
        // Balanced realized plan: negligible waste.
        let bal = crate::plan::RealizedPlan::balanced(n, eps).unwrap();
        let (eff_b, waste_b) = wasted_assignments(&bal.detection_profile()).unwrap();
        assert!(eff_b >= eps - 1e-9 && eff_b < eps + 0.02, "{eff_b}");
        assert!(waste_b < 0.01 * n as f64, "balanced waste {waste_b}");
        // GS realized plan at the same ε: measurable waste (its higher-k
        // over-protection).
        let gs = crate::plan::RealizedPlan::golle_stubblebine(n, eps).unwrap();
        let (eff_g, waste_g) = wasted_assignments(&gs.detection_profile()).unwrap();
        assert!(eff_g >= eps - 1e-9 && eff_g < eps + 0.02, "{eff_g}");
        assert!(
            waste_g > waste_b,
            "GS waste {waste_g} vs balanced {waste_b}"
        );
        // Simple redundancy: zero guarantee, every extra copy wasted.
        let simple = crate::plan::RealizedPlan::k_fold(n, 2, eps).unwrap();
        let (eff_s, waste_s) = wasted_assignments(&simple.detection_profile()).unwrap();
        assert_eq!(eff_s, 0.0);
        assert!((waste_s - n as f64).abs() < 1.0, "simple waste {waste_s}");
    }

    #[test]
    fn golle_stubblebine_has_positive_equality_gap() {
        // GS over-protects k ≥ 2 (P_k rises with k): Proposition 2 says this
        // is waste; the gap quantifies it.
        let gs = GolleStubblebine::for_threshold(1_000_000, 0.5).unwrap();
        let prof = gs.detection_profile();
        let gap = equality_gap(&prof, 0.5, 10).unwrap();
        // P₂ = 1 − (1−c)³ with c = 1−√½: gap = |P₂ − ½| ≈ 0.146 at k=2,
        // larger at bigger k.
        assert!(gap > 0.2, "gap {gap}");
    }
}
