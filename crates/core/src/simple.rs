//! Simple (m-fold) redundancy — the baseline every deployed platform used
//! at the time of the paper.
//!
//! Every task is assigned exactly `m` times (typically `m = 2`).  Matching
//! results are accepted, so an adversary controlling all `m` copies of a
//! task "can cheat with impunity" (Section 1): the scheme's guaranteed
//! detection threshold is zero, whatever `m`.

use crate::distribution::Distribution;
use crate::error::CoreError;
use crate::scheme::Scheme;

/// `m`-fold redundancy: `x_m = N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KFold {
    n: u64,
    m: usize,
}

impl KFold {
    /// Create `m`-fold redundancy over `n` tasks (`m ≥ 1`).
    pub fn new(n: u64, m: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        if m == 0 {
            return Err(CoreError::InvalidMinMultiplicity { value: m });
        }
        Ok(KFold { n, m })
    }

    /// Classic simple redundancy (`m = 2`), the paper's main baseline.
    pub fn simple(n: u64) -> Result<Self, CoreError> {
        KFold::new(n, 2)
    }

    /// The multiplicity every task receives.
    pub fn multiplicity(&self) -> usize {
        self.m
    }
}

impl Scheme for KFold {
    fn name(&self) -> &'static str {
        if self.m == 2 {
            "simple-redundancy"
        } else {
            "k-fold-redundancy"
        }
    }

    fn n_tasks(&self) -> u64 {
        self.n
    }

    fn distribution(&self) -> Distribution {
        let mut w = vec![0.0; self.m];
        w[self.m - 1] = self.n as f64;
        Distribution::from_weights(w)
    }

    /// Zero: an adversary holding all `m` copies is never detected.
    fn guaranteed_detection(&self) -> Option<f64> {
        Some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_redundancy_has_factor_two() {
        let s = KFold::simple(1_000_000).unwrap();
        assert_eq!(s.name(), "simple-redundancy");
        assert_eq!(s.redundancy_factor(), 2.0);
        assert_eq!(s.total_assignments(), 2_000_000.0);
        assert_eq!(s.multiplicity(), 2);
    }

    #[test]
    fn collusion_breaks_simple_redundancy() {
        let s = KFold::simple(100).unwrap();
        let prof = s.detection_profile();
        assert_eq!(prof.p_asymptotic(2), Some(0.0));
        assert_eq!(s.effective_detection(0.0).unwrap(), 0.0);
        assert_eq!(s.guaranteed_detection(), Some(0.0));
    }

    #[test]
    fn higher_fold_counts() {
        let s = KFold::new(10, 5).unwrap();
        assert_eq!(s.name(), "k-fold-redundancy");
        assert_eq!(s.redundancy_factor(), 5.0);
        // Still zero guarantee: a 5-tuple holder cheats freely.
        assert_eq!(s.detection_profile().p_asymptotic(5), Some(0.0));
        // But sub-tuple holders are always caught.
        assert_eq!(s.detection_profile().p_asymptotic(3), Some(1.0));
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(KFold::new(0, 2).is_err());
        assert!(KFold::new(10, 0).is_err());
    }
}
