//! The detection-probability engine (Section 2.2 of the paper).
//!
//! An adversary holding `k` copies of one task cheats by returning the same
//! wrong answer on all `k`.  She escapes iff the task's true multiplicity is
//! exactly `k` **and** the supervisor did not precompute that task.  The
//! conditional detection probabilities are therefore ratios of `k`-tuple
//! counts:
//!
//! * **asymptotic** (adversary holds a vanishing share of assignments):
//!
//!   `P_k = Σ_{i>k} C(i,k)·t_i + r_k  ∕  ( t_k + Σ_{i>k} C(i,k)·t_i )`
//!
//!   where `t_i = n_i + r_i` is the total task count at multiplicity `i`,
//!   split into `n_i` ordinary and `r_i` precomputed ("ringer") tasks;
//!
//! * **non-asymptotic** (adversary holds proportion `p` of assignments,
//!   each copy independently with probability `p`):
//!
//!   `P_{k,p} = 1 − n_k ∕ Σ_{i≥k} C(i,k)·(1−p)^{i−k}·t_i`.
//!
//! Both are evaluated with an overflow-free product recurrence, so the
//! engine handles every distribution in this workspace (dimensions ≤ ~80)
//! at full double precision.  The closed forms proved in the paper
//! (Theorem 1, Proposition 3, the Golle–Stubblebine formulas) are tested
//! against this generic engine throughout the workspace.

use crate::distribution::Distribution;
use crate::error::{check_proportion, CoreError};
/// Task counts by multiplicity, split into ordinary and precomputed tasks.
///
/// Precomputed tasks (the paper's *ringers*, and the verified top-
/// multiplicity partition of the assignment-minimizing distributions)
/// always catch a cheater, whatever fraction of their copies she holds.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionProfile {
    /// `normal[j]` = ordinary tasks with multiplicity `j + 1`.
    normal: Vec<f64>,
    /// `precomputed[j]` = supervisor-verified tasks with multiplicity `j+1`.
    precomputed: Vec<f64>,
}

impl DetectionProfile {
    /// Profile of a plain distribution with no precomputed tasks.
    pub fn from_distribution(dist: &Distribution) -> Self {
        DetectionProfile {
            normal: dist.as_slice().to_vec(),
            precomputed: vec![],
        }
    }

    /// Build from explicit ordinary counts (index 0 ↦ multiplicity 1).
    pub fn from_normal(normal: Vec<f64>) -> Self {
        DetectionProfile {
            normal,
            precomputed: vec![],
        }
    }

    /// Add `count` precomputed tasks at `multiplicity` (builder style).
    pub fn with_precomputed(mut self, multiplicity: usize, count: f64) -> Self {
        assert!(multiplicity >= 1, "multiplicity must be ≥ 1");
        assert!(count >= 0.0 && count.is_finite(), "bad ringer count");
        if multiplicity > self.precomputed.len() {
            self.precomputed.resize(multiplicity, 0.0);
        }
        self.precomputed[multiplicity - 1] += count;
        self
    }

    /// Add `count` ordinary tasks at `multiplicity` (builder style).
    pub fn merge_normal(mut self, multiplicity: usize, count: f64) -> Self {
        assert!(multiplicity >= 1, "multiplicity must be ≥ 1");
        assert!(count >= 0.0 && count.is_finite(), "bad task count");
        if multiplicity > self.normal.len() {
            self.normal.resize(multiplicity, 0.0);
        }
        self.normal[multiplicity - 1] += count;
        self
    }

    /// Reclassify the `multiplicity` bucket of ordinary tasks as
    /// precomputed (used for the top partition of assignment-minimizing
    /// distributions, which the supervisor must verify).
    pub fn verify_bucket(mut self, multiplicity: usize) -> Self {
        assert!(multiplicity >= 1);
        let moved = if multiplicity <= self.normal.len() {
            std::mem::take(&mut self.normal[multiplicity - 1])
        } else {
            0.0
        };
        if moved > 0.0 {
            self = self.with_precomputed(multiplicity, moved);
        }
        self
    }

    /// Largest multiplicity present.
    pub fn dimension(&self) -> usize {
        let n = self
            .normal
            .iter()
            .rposition(|&w| w > 0.0)
            .map_or(0, |j| j + 1);
        let r = self
            .precomputed
            .iter()
            .rposition(|&w| w > 0.0)
            .map_or(0, |j| j + 1);
        n.max(r)
    }

    /// Total tasks (ordinary + precomputed).
    pub fn total_tasks(&self) -> f64 {
        self.normal.iter().sum::<f64>() + self.precomputed.iter().sum::<f64>()
    }

    /// Total precomputed tasks.
    pub fn precomputed_tasks(&self) -> f64 {
        self.precomputed.iter().sum()
    }

    /// Total assignments (ordinary + precomputed copies).
    pub fn total_assignments(&self) -> f64 {
        let count = |v: &[f64]| {
            v.iter()
                .enumerate()
                .map(|(j, &w)| (j + 1) as f64 * w)
                .sum::<f64>()
        };
        count(&self.normal) + count(&self.precomputed)
    }

    fn normal_at(&self, multiplicity: usize) -> f64 {
        self.normal.get(multiplicity - 1).copied().unwrap_or(0.0)
    }

    fn total_at(&self, multiplicity: usize) -> f64 {
        self.normal_at(multiplicity)
            + self
                .precomputed
                .get(multiplicity - 1)
                .copied()
                .unwrap_or(0.0)
    }

    /// `Σ_{i≥k} C(i,k)·(1−p)^{i−k}·t_i` via the ratio recurrence
    /// `term(i+1)/term(i) = (i+1)/(i+1−k) · (1−p)`, which never forms a
    /// large binomial coefficient explicitly.
    fn discounted_tuples(&self, k: usize, p: f64) -> f64 {
        let dim = self.dimension();
        if k == 0 || k > dim {
            return 0.0;
        }
        let q = 1.0 - p;
        let mut factor = 1.0; // C(k,k)·q⁰
        let mut total = factor * self.total_at(k);
        for i in k..dim {
            // advance factor from multiplicity i to i+1
            factor *= (i + 1) as f64 / (i + 1 - k) as f64 * q;
            total += factor * self.total_at(i + 1);
        }
        total
    }

    /// Asymptotic detection probability `P_k` for an adversary holding `k`
    /// copies of a task (Section 2.2).  Returns `None` when no `k`-tuple can
    /// exist (no task has multiplicity ≥ k).
    pub fn p_asymptotic(&self, k: usize) -> Option<f64> {
        let all = self.discounted_tuples(k, 0.0);
        if all <= 0.0 {
            return None;
        }
        let undetected = self.normal_at(k);
        Some(1.0 - undetected / all)
    }

    /// Non-asymptotic detection probability `P_{k,p}` when the adversary
    /// holds proportion `p` of all assignments (each copy independently).
    ///
    /// Returns `Ok(None)` when no `k`-tuple can arise.
    pub fn p_nonasymptotic(&self, k: usize, p: f64) -> Result<Option<f64>, CoreError> {
        check_proportion(p)?;
        let all = self.discounted_tuples(k, p);
        if all <= 0.0 {
            return Ok(None);
        }
        Ok(Some(1.0 - self.normal_at(k) / all))
    }

    /// The *effective* detection probability at adversary proportion `p`:
    /// the minimum of `P_{k,p}` over every `k` an intelligent adversary
    /// could exploit (Section 5: "the effective detection probability
    /// provided by a distribution is the minimum, over all relevant k, of
    /// `P_{k,p}`").
    pub fn effective_detection(&self, p: f64) -> Result<f64, CoreError> {
        check_proportion(p)?;
        let dim = self.dimension();
        let mut min_p = 1.0f64;
        for k in 1..=dim {
            if let Some(pk) = self.p_nonasymptotic(k, p)? {
                min_p = min_p.min(pk);
            }
        }
        Ok(min_p)
    }

    /// The multiplicity the adversary should attack: the argmin of
    /// `P_{k,p}`, together with that probability.
    pub fn weakest_tuple(&self, p: f64) -> Result<Option<(usize, f64)>, CoreError> {
        check_proportion(p)?;
        let dim = self.dimension();
        let mut best: Option<(usize, f64)> = None;
        for k in 1..=dim {
            if let Some(pk) = self.p_nonasymptotic(k, p)? {
                if best.is_none_or(|(_, b)| pk < b) {
                    best = Some((k, pk));
                }
            }
        }
        Ok(best)
    }

    /// True if every asymptotic constraint `C_k : P_k ≥ ε − tol` holds for
    /// `k = 1 .. dimension` (the paper's validity notion, with precomputed
    /// tasks standing in for the unverifiable top constraint).
    pub fn satisfies_threshold(&self, epsilon: f64, tol: f64) -> bool {
        let dim = self.dimension();
        (1..=dim).all(|k| match self.p_asymptotic(k) {
            Some(pk) => pk >= epsilon - tol,
            None => true,
        })
    }
}

impl redundancy_json::ToJson for DetectionProfile {
    fn to_json(&self) -> redundancy_json::Json {
        redundancy_json::obj(vec![
            ("normal", self.normal.to_json()),
            ("precomputed", self.precomputed.to_json()),
        ])
    }
}

impl redundancy_json::FromJson for DetectionProfile {
    fn from_json(value: &redundancy_json::Json) -> Result<Self, redundancy_json::JsonError> {
        Ok(DetectionProfile {
            normal: Vec::<f64>::from_json(value.field("normal")?)?,
            precomputed: Vec::<f64>::from_json(value.field("precomputed")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(normal: &[f64]) -> DetectionProfile {
        DetectionProfile::from_normal(normal.to_vec())
    }

    #[test]
    fn simple_redundancy_detects_singletons_not_pairs() {
        // x₂ = N: P₁ = 1 (a lone copy is always paired with an honest one),
        // P₂ = 0 (holding both copies is never caught).
        let prof = profile(&[0.0, 1000.0]);
        assert_eq!(prof.p_asymptotic(1), Some(1.0));
        assert_eq!(prof.p_asymptotic(2), Some(0.0));
        assert_eq!(prof.p_asymptotic(3), None);
        assert_eq!(prof.effective_detection(0.0).unwrap(), 0.0);
    }

    #[test]
    fn hand_computed_two_bucket_case() {
        // x₁ = 60, x₂ = 40: 1-tuples from >1: C(2,1)·40 = 80;
        // P₁ = 80/(60+80) = 4/7.
        let prof = profile(&[60.0, 40.0]);
        let p1 = prof.p_asymptotic(1).unwrap();
        assert!((p1 - 4.0 / 7.0).abs() < 1e-12);
        // P₂ = 0: nothing above multiplicity 2.
        assert_eq!(prof.p_asymptotic(2), Some(0.0));
    }

    #[test]
    fn three_bucket_case_with_binomials() {
        // x₁ = 10, x₂ = 5, x₃ = 2.
        // P₁: detected = 2·5 + 3·2 = 16, all = 10 + 16 = 26 → 16/26.
        // P₂: detected = C(3,2)·2 = 6, all = 5 + 6 = 11 → 6/11.
        let prof = profile(&[10.0, 5.0, 2.0]);
        assert!((prof.p_asymptotic(1).unwrap() - 16.0 / 26.0).abs() < 1e-12);
        assert!((prof.p_asymptotic(2).unwrap() - 6.0 / 11.0).abs() < 1e-12);
        assert_eq!(prof.p_asymptotic(3), Some(0.0));
    }

    #[test]
    fn nonasymptotic_reduces_to_asymptotic_at_zero() {
        let prof = profile(&[10.0, 5.0, 2.0, 1.0]);
        for k in 1..=4 {
            let asym = prof.p_asymptotic(k).unwrap();
            let at0 = prof.p_nonasymptotic(k, 0.0).unwrap().unwrap();
            assert!((asym - at0).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn nonasymptotic_decreases_with_p() {
        let prof = profile(&[100.0, 50.0, 10.0]);
        let p_small = prof.p_nonasymptotic(1, 0.01).unwrap().unwrap();
        let p_large = prof.p_nonasymptotic(1, 0.4).unwrap().unwrap();
        assert!(p_large < p_small);
    }

    #[test]
    fn nonasymptotic_hand_case() {
        // x₁ = 1, x₂ = 1, k = 1, p = 0.5:
        // all = C(1,1)·1 + C(2,1)·0.5·1 = 2 → P = 1 − 1/2 = 0.5.
        let prof = profile(&[1.0, 1.0]);
        let p = prof.p_nonasymptotic(1, 0.5).unwrap().unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precomputed_tasks_always_detect() {
        // All tasks multiplicity 2 and precomputed: P₂ = 1.
        let prof = profile(&[]).with_precomputed(2, 100.0);
        assert_eq!(prof.p_asymptotic(2), Some(1.0));
        assert_eq!(prof.p_asymptotic(1), Some(1.0));
        assert_eq!(prof.precomputed_tasks(), 100.0);
    }

    #[test]
    fn ringers_lift_the_top_constraint() {
        // Paper §6 formula: with x_m ordinary tasks at multiplicity m and r
        // ringers at m+1, P_m = (m+1)r / (x_m + (m+1)r).
        let m = 20usize;
        let x_m = 12.0;
        let r = 57.0;
        let prof = profile(&[0.0; 19]) // nothing below m
            .with_precomputed(m + 1, r)
            .merge_normal(m, x_m);
        let expect = (m as f64 + 1.0) * r / (x_m + (m as f64 + 1.0) * r);
        let got = prof.p_asymptotic(m).unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn verify_bucket_moves_mass() {
        let prof = profile(&[10.0, 5.0, 3.0]).verify_bucket(3);
        assert_eq!(prof.precomputed_tasks(), 3.0);
        // P₃ becomes 1: all multiplicity-3 tasks are verified.
        assert_eq!(prof.p_asymptotic(3), Some(1.0));
        assert_eq!(prof.total_tasks(), 18.0);
    }

    #[test]
    fn weakest_tuple_identifies_attack_point() {
        let prof = profile(&[0.0, 100.0, 1.0]);
        // k = 2 is nearly uncovered; k = 1 and (via the x₃ bucket) k = 3...
        let (k, p) = prof.weakest_tuple(0.0).unwrap().unwrap();
        assert_eq!(k, 3, "multiplicity-3 tasks are fully cheatable");
        assert_eq!(p, 0.0);
    }

    #[test]
    fn effective_detection_validates_p() {
        let prof = profile(&[1.0]);
        assert!(prof.effective_detection(1.0).is_err());
        assert!(prof.p_nonasymptotic(1, -0.1).is_err());
    }

    #[test]
    fn satisfies_threshold_checks_all_k() {
        let good = profile(&[0.0, 10.0]).verify_bucket(2);
        assert!(good.satisfies_threshold(0.99, 1e-12));
        let bad = profile(&[0.0, 10.0]);
        assert!(!bad.satisfies_threshold(0.5, 1e-12));
    }

    #[test]
    fn totals_and_dimension() {
        let prof = profile(&[2.0, 3.0]).with_precomputed(4, 1.0);
        assert_eq!(prof.dimension(), 4);
        assert_eq!(prof.total_tasks(), 6.0);
        assert_eq!(prof.total_assignments(), 2.0 + 6.0 + 4.0);
    }

    #[test]
    fn json_round_trip() {
        let prof = profile(&[1.0, 2.0]).with_precomputed(3, 4.0);
        let json = redundancy_json::to_string(&prof);
        let back: DetectionProfile = redundancy_json::from_str(&json).unwrap();
        assert_eq!(prof, back);
    }
}
