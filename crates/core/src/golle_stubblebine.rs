//! The Golle–Stubblebine geometric distribution (Section 3.1).
//!
//! Golle and Stubblebine [Financial Crypto 2001] assign `gᵢ = (1−c)·c^{i−1}·N`
//! tasks with multiplicity `i` for a fixed ratio `0 < c < 1` — a geometric
//! law.  Key facts re-derived and implemented here:
//!
//! * total assignments `N/(1−c)`, i.e. redundancy factor `1/(1−c)`;
//! * asymptotic detection `P_k = 1 − (1−c)^{k+1}`, *increasing* in `k`;
//! * non-asymptotic `P_{k,p} = 1 − (1 − c(1−p))^{k+1}`;
//! * to guarantee threshold ε for every `k` it suffices to cover `k = 1`:
//!   `c = 1 − √(1−ε)`, giving redundancy factor `1/√(1−ε)` — cheaper than
//!   simple redundancy exactly when `ε < 3/4`.
//!
//! The paper's key observation (and the seed of the Balanced distribution):
//! since `P_k` *increases* with `k`, an intelligent adversary always attacks
//! singletons, so the extra protection bought at higher `k` is wasted
//! resources.

use crate::distribution::Distribution;
use crate::error::{check_proportion, check_threshold, CoreError};
use crate::scheme::Scheme;

/// Relative weight below which the ideal geometric tail is truncated when
/// materializing a [`Distribution`] (the closed forms remain exact).
const TAIL_CUTOFF: f64 = 1e-12;

/// The Golle–Stubblebine geometric distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GolleStubblebine {
    n: u64,
    c: f64,
}

impl GolleStubblebine {
    /// Create from an explicit geometric ratio `0 < c < 1`.
    pub fn with_ratio(n: u64, c: f64) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        if !(c.is_finite() && 0.0 < c && c < 1.0) {
            return Err(CoreError::InvalidRatio { value: c });
        }
        Ok(GolleStubblebine { n, c })
    }

    /// Tune `c` for asymptotic detection threshold `ε`: the binding
    /// constraint is `k = 1`, giving `c = 1 − √(1−ε)`.
    pub fn for_threshold(n: u64, epsilon: f64) -> Result<Self, CoreError> {
        check_threshold(epsilon)?;
        GolleStubblebine::with_ratio(n, 1.0 - (1.0 - epsilon).sqrt())
    }

    /// Tune `c` so the threshold holds even when the adversary controls
    /// proportion `p` of assignments: `c = (1 − √(1−ε)) / (1−p)`.
    ///
    /// Fails with [`CoreError::UnreachableThreshold`] when that would need
    /// `c ≥ 1`.
    pub fn for_threshold_nonasymptotic(n: u64, epsilon: f64, p: f64) -> Result<Self, CoreError> {
        check_threshold(epsilon)?;
        check_proportion(p)?;
        let c = (1.0 - (1.0 - epsilon).sqrt()) / (1.0 - p);
        if c >= 1.0 {
            return Err(CoreError::UnreachableThreshold {
                epsilon,
                proportion: p,
            });
        }
        GolleStubblebine::with_ratio(n, c)
    }

    /// The geometric ratio `c`.
    pub fn ratio(&self) -> f64 {
        self.c
    }

    /// Closed-form asymptotic detection probability
    /// `P_k = 1 − (1−c)^{k+1}`.
    pub fn p_asymptotic(&self, k: usize) -> f64 {
        1.0 - (1.0 - self.c).powi(k as i32 + 1)
    }

    /// Closed-form non-asymptotic detection probability
    /// `P_{k,p} = 1 − (1 − c(1−p))^{k+1}`.
    pub fn p_nonasymptotic(&self, k: usize, p: f64) -> Result<f64, CoreError> {
        check_proportion(p)?;
        Ok(1.0 - (1.0 - self.c * (1.0 - p)).powi(k as i32 + 1))
    }

    /// Closed-form redundancy factor `1/(1−c)`.
    pub fn redundancy_factor_exact(&self) -> f64 {
        1.0 / (1.0 - self.c)
    }

    /// Closed-form total assignments `N/(1−c)`.
    pub fn total_assignments_exact(&self) -> f64 {
        self.n as f64 / (1.0 - self.c)
    }

    /// Redundancy factor needed to guarantee `ε` asymptotically:
    /// `1/√(1−ε)` (cheaper than simple redundancy iff `ε < 3/4`).
    pub fn factor_for_threshold(epsilon: f64) -> Result<f64, CoreError> {
        check_threshold(epsilon)?;
        Ok(1.0 / (1.0 - epsilon).sqrt())
    }

    /// Non-asymptotic redundancy factor `1 / (1 − (1−√(1−ε))/(1−p))`.
    pub fn factor_for_threshold_nonasymptotic(epsilon: f64, p: f64) -> Result<f64, CoreError> {
        let gs = GolleStubblebine::for_threshold_nonasymptotic(1, epsilon, p)?;
        Ok(gs.redundancy_factor_exact())
    }
}

impl Scheme for GolleStubblebine {
    fn name(&self) -> &'static str {
        "golle-stubblebine"
    }

    fn n_tasks(&self) -> u64 {
        self.n
    }

    /// Materialize the geometric weights, truncating the tail once the
    /// remaining mass is a `TAIL_CUTOFF` fraction of `N` (the truncated mass
    /// is folded into the final bucket so `Σ xᵢ = N` exactly).
    fn distribution(&self) -> Distribution {
        let n = self.n as f64;
        let mut weights = Vec::new();
        let mut remaining = n;
        let mut w = (1.0 - self.c) * n; // g₁
        while remaining > TAIL_CUTOFF * n && w > TAIL_CUTOFF * n {
            weights.push(w.min(remaining));
            remaining -= w.min(remaining);
            w *= self.c;
        }
        if remaining > 0.0 {
            weights.push(remaining);
        }
        Distribution::from_weights(weights)
    }

    fn guaranteed_detection(&self) -> Option<f64> {
        // The binding constraint is k = 1: P₁ = 1 − (1−c)².
        Some(self.p_asymptotic(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(GolleStubblebine::with_ratio(0, 0.5).is_err());
        assert!(GolleStubblebine::with_ratio(10, 0.0).is_err());
        assert!(GolleStubblebine::with_ratio(10, 1.0).is_err());
        assert!(GolleStubblebine::for_threshold(10, 1.5).is_err());
        assert!(GolleStubblebine::with_ratio(10, 0.3).is_ok());
    }

    #[test]
    fn threshold_tuning_half() {
        // ε = 0.5 → c = 1 − √0.5, factor = √2.
        let gs = GolleStubblebine::for_threshold(1000, 0.5).unwrap();
        assert!((gs.ratio() - (1.0 - 0.5f64.sqrt())).abs() < 1e-12);
        assert!((gs.redundancy_factor_exact() - 2.0f64.sqrt()).abs() < 1e-12);
        // Guaranteed detection equals ε exactly at k = 1.
        assert!((gs.p_asymptotic(1) - 0.5).abs() < 1e-12);
        assert!((gs.guaranteed_detection().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn detection_increases_with_k() {
        // Section 3.1's key observation: P_k strictly increases in k, so the
        // adversary's best attack is always the singleton.
        let gs = GolleStubblebine::for_threshold(1000, 0.5).unwrap();
        let mut prev = gs.p_asymptotic(1);
        for k in 2..10 {
            let pk = gs.p_asymptotic(k);
            assert!(pk > prev, "P_{k} must exceed P_{}", k - 1);
            prev = pk;
        }
    }

    #[test]
    fn cheaper_than_simple_iff_eps_below_three_quarters() {
        assert!(GolleStubblebine::factor_for_threshold(0.74).unwrap() < 2.0);
        assert!((GolleStubblebine::factor_for_threshold(0.75).unwrap() - 2.0).abs() < 1e-12);
        assert!(GolleStubblebine::factor_for_threshold(0.76).unwrap() > 2.0);
    }

    #[test]
    fn closed_forms_match_generic_engine() {
        let gs = GolleStubblebine::for_threshold(1_000_000, 0.6).unwrap();
        let prof = gs.detection_profile();
        for k in 1..12 {
            let generic = prof.p_asymptotic(k).unwrap();
            let closed = gs.p_asymptotic(k);
            assert!(
                (generic - closed).abs() < 1e-4,
                "k={k}: generic {generic} vs closed {closed}"
            );
            for &p in &[0.05, 0.2] {
                let generic_p = prof.p_nonasymptotic(k, p).unwrap().unwrap();
                let closed_p = gs.p_nonasymptotic(k, p).unwrap();
                assert!(
                    (generic_p - closed_p).abs() < 1e-4,
                    "k={k},p={p}: {generic_p} vs {closed_p}"
                );
            }
        }
    }

    #[test]
    fn distribution_mass_and_assignments() {
        let gs = GolleStubblebine::with_ratio(100_000, 0.4).unwrap();
        let d = gs.distribution();
        assert!((d.total_tasks() - 100_000.0).abs() < 1e-6);
        let rel = (d.total_assignments() - gs.total_assignments_exact()).abs()
            / gs.total_assignments_exact();
        assert!(
            rel < 1e-9,
            "{} vs {}",
            d.total_assignments(),
            gs.total_assignments_exact()
        );
    }

    #[test]
    fn geometric_shape() {
        let gs = GolleStubblebine::with_ratio(1000, 0.5).unwrap();
        let d = gs.distribution();
        // g₁ = 500, g₂ = 250, …
        assert!((d.weight(1) - 500.0).abs() < 1e-9);
        assert!((d.weight(2) - 250.0).abs() < 1e-9);
        assert!((d.weight(3) - 125.0).abs() < 1e-9);
    }

    #[test]
    fn nonasymptotic_tuning() {
        let gs = GolleStubblebine::for_threshold_nonasymptotic(1000, 0.5, 0.1).unwrap();
        // P_{1,p} should be ≥ 0.5 at p = 0.1 by construction (equality).
        let p1 = gs.p_nonasymptotic(1, 0.1).unwrap();
        assert!((p1 - 0.5).abs() < 1e-12, "{p1}");
        // Unreachable when (1−√(1−ε)) ≥ (1−p).
        assert!(matches!(
            GolleStubblebine::for_threshold_nonasymptotic(1000, 0.99, 0.95),
            Err(CoreError::UnreachableThreshold { .. })
        ));
    }
}
