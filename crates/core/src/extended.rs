//! The extended Balanced distribution with a minimum multiplicity
//! (Section 7, "Extending the Main Theorem").
//!
//! A supervisor may want *every* task assigned at least `m` times (e.g. to
//! retain simple redundancy's error-masking benefits for non-malicious
//! faults).  The extension truncates the Poisson law below `m`:
//!
//! ```text
//! aᵢ = N·β·γ^i/i!   for i ≥ m,      β = 1 / (e^γ − Σ_{i<m} γ^i/i!),
//! ```
//!
//! with `γ = ln(1/(1−ε))` as before.  The asymptotic detection probability
//! remains exactly ε for all `k ≥ m` (and 1 below `m`, where no cheatable
//! tuple exists), and the redundancy factor is
//!
//! ```text
//! R = β·γ·(e^γ − Σ_{i ≤ m−2} γ^i/i!).
//! ```
//!
//! Paper examples (ε = 0.5): minimum multiplicities 2, 3, 4, 5 give
//! R ≈ 2.259, 3.192, 4.152, 5.126; at `N = 100,000` the min-2 variant costs
//! 25,900 assignments (~13 %) more than simple redundancy while adding the
//! ε = 0.5 guarantee that simple redundancy entirely lacks.

use crate::distribution::Distribution;
use crate::error::{check_threshold, CoreError};
use crate::scheme::Scheme;

/// Relative tail-truncation threshold when materializing weights.
const TAIL_CUTOFF: f64 = 1e-12;

/// Balanced distribution constrained to multiplicities `≥ min_multiplicity`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedBalanced {
    n: u64,
    epsilon: f64,
    min_multiplicity: usize,
}

impl ExtendedBalanced {
    /// Create the extended Balanced distribution.
    ///
    /// `min_multiplicity = 1` recovers the plain Balanced distribution.
    pub fn new(n: u64, epsilon: f64, min_multiplicity: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        check_threshold(epsilon)?;
        if min_multiplicity == 0 {
            return Err(CoreError::InvalidMinMultiplicity {
                value: min_multiplicity,
            });
        }
        Ok(ExtendedBalanced {
            n,
            epsilon,
            min_multiplicity,
        })
    }

    /// The Poisson parameter `γ = ln(1/(1−ε))`.
    pub fn gamma(&self) -> f64 {
        (1.0 / (1.0 - self.epsilon)).ln()
    }

    /// The minimum multiplicity `m`.
    pub fn min_multiplicity(&self) -> usize {
        self.min_multiplicity
    }

    /// Normalizer `β = 1 / (e^γ − Σ_{i=0}^{m−1} γ^i/i!)`.
    pub fn beta(&self) -> f64 {
        let gamma = self.gamma();
        1.0 / (gamma.exp() - poisson_partial_sum(gamma, self.min_multiplicity))
    }

    /// Ideal weight `aᵢ = N·β·γ^i/i!` for `i ≥ m`, zero below.
    pub fn ideal_weight(&self, i: usize) -> f64 {
        if i < self.min_multiplicity {
            return 0.0;
        }
        let gamma = self.gamma();
        let mut w = self.n as f64 * self.beta();
        for j in 1..=i {
            w *= gamma / j as f64;
        }
        w
    }

    /// Closed-form redundancy factor
    /// `R = β·γ·(e^γ − Σ_{i=0}^{m−2} γ^i/i!)`.
    pub fn redundancy_factor_exact(&self) -> f64 {
        let gamma = self.gamma();
        let m = self.min_multiplicity;
        let upper_sum = if m >= 2 {
            poisson_partial_sum(gamma, m - 1)
        } else {
            0.0
        };
        self.beta() * gamma * (gamma.exp() - upper_sum)
    }

    /// Closed-form total assignments `N·R`.
    pub fn total_assignments_exact(&self) -> f64 {
        self.n as f64 * self.redundancy_factor_exact()
    }

    /// Asymptotic detection probability: 1 below the minimum multiplicity
    /// (no cheatable `k`-tuple of multiplicity-`k` tasks exists), ε at and
    /// above it.
    pub fn p_asymptotic(&self, k: usize) -> f64 {
        if k < self.min_multiplicity {
            1.0
        } else {
            self.epsilon
        }
    }
}

/// `Σ_{i=0}^{terms−1} γ^i / i!` — the partial exponential sum.
fn poisson_partial_sum(gamma: f64, terms: usize) -> f64 {
    let mut total = 0.0;
    let mut term = 1.0;
    for i in 0..terms {
        total += term;
        term *= gamma / (i + 1) as f64;
    }
    total
}

impl Scheme for ExtendedBalanced {
    fn name(&self) -> &'static str {
        "extended-balanced"
    }

    fn n_tasks(&self) -> u64 {
        self.n
    }

    fn distribution(&self) -> Distribution {
        let n = self.n as f64;
        let gamma = self.gamma();
        let m = self.min_multiplicity;
        let mut weights = vec![0.0; m - 1];
        let mut remaining = n;
        let mut w = self.ideal_weight(m);
        let mut i = m;
        while remaining > TAIL_CUTOFF * n && w > TAIL_CUTOFF * n {
            let take = w.min(remaining);
            weights.push(take);
            remaining -= take;
            i += 1;
            w *= gamma / i as f64;
        }
        if remaining > 0.0 {
            weights.push(remaining);
        }
        Distribution::from_weights(weights)
    }

    fn guaranteed_detection(&self) -> Option<f64> {
        Some(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced::Balanced;

    #[test]
    fn construction_validation() {
        assert!(ExtendedBalanced::new(0, 0.5, 2).is_err());
        assert!(ExtendedBalanced::new(10, 1.5, 2).is_err());
        assert!(ExtendedBalanced::new(10, 0.5, 0).is_err());
        assert!(ExtendedBalanced::new(10, 0.5, 3).is_ok());
    }

    #[test]
    fn min_multiplicity_one_recovers_balanced() {
        let ext = ExtendedBalanced::new(1_000_000, 0.6, 1).unwrap();
        let bal = Balanced::new(1_000_000, 0.6).unwrap();
        assert!((ext.redundancy_factor_exact() - bal.redundancy_factor_exact()).abs() < 1e-12);
        for i in 1..20 {
            assert!(
                (ext.ideal_weight(i) - bal.ideal_weight(i)).abs() < 1e-6,
                "i={i}"
            );
        }
    }

    #[test]
    fn paper_section7_redundancy_factors() {
        // ε = 0.5, min multiplicities 2..5 → 2.259, 3.192, 4.152, 5.126
        // (recomputed exactly; the OCR of the paper lost digits here but
        // agrees on every digit it retained: 2.259, 3._92, 4._52, 5._).
        let expect = [2.259, 3.192, 4.152, 5.126];
        for (m, want) in (2..=5).zip(expect) {
            let ext = ExtendedBalanced::new(100_000, 0.5, m).unwrap();
            let got = ext.redundancy_factor_exact();
            assert!((got - want).abs() < 0.002, "m={m}: {got} vs paper {want}");
        }
    }

    #[test]
    fn paper_extra_cost_over_simple_redundancy() {
        // N = 100,000, ε = 0.5, m = 2: 25,900 more assignments than the
        // 200,000 of simple redundancy (~13 %).
        let ext = ExtendedBalanced::new(100_000, 0.5, 2).unwrap();
        let extra = ext.total_assignments_exact() - 200_000.0;
        assert!((extra - 25_900.0).abs() < 100.0, "extra = {extra}");
    }

    #[test]
    fn weights_sum_to_n_and_respect_minimum() {
        let ext = ExtendedBalanced::new(500_000, 0.5, 3).unwrap();
        let d = ext.distribution();
        assert!((d.total_tasks() - 500_000.0).abs() < 1e-6);
        assert_eq!(d.weight(1), 0.0);
        assert_eq!(d.weight(2), 0.0);
        assert!(d.weight(3) > 0.0);
        let rel = (d.total_assignments() - ext.total_assignments_exact()).abs()
            / ext.total_assignments_exact();
        assert!(rel < 1e-9);
    }

    #[test]
    fn detection_is_eps_at_and_above_minimum() {
        let ext = ExtendedBalanced::new(1_000_000, 0.5, 3).unwrap();
        let prof = ext.detection_profile();
        let dim = prof.dimension();
        // Below m: no multiplicity-k tasks exist, so a k-tuple always comes
        // from a larger task and is always caught.
        for k in 1..3 {
            assert_eq!(prof.p_asymptotic(k), Some(1.0), "k={k}");
            assert_eq!(ext.p_asymptotic(k), 1.0);
        }
        for k in 3..=dim / 2 {
            let pk = prof.p_asymptotic(k).unwrap();
            assert!((pk - 0.5).abs() < 1e-4, "k={k}: {pk}");
            assert_eq!(ext.p_asymptotic(k), 0.5);
        }
    }

    #[test]
    fn beta_normalizes_the_tail() {
        let ext = ExtendedBalanced::new(1, 0.5, 4).unwrap();
        let gamma = ext.gamma();
        // β · Σ_{i≥4} γ^i/i! must equal 1.
        let mut tail = 0.0;
        let mut term = 1.0;
        for i in 0..200 {
            if i >= 4 {
                tail += term;
            }
            term *= gamma / (i + 1) as f64;
        }
        assert!((ext.beta() * tail - 1.0).abs() < 1e-12);
    }
}
