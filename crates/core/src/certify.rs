//! Exact-arithmetic certification of the `S_m` optima (the Figure 2 sweep).
//!
//! [`crate::minimizing::AssignmentMinimizing`] solves `S_m` with the f64
//! simplex and audits the result with an epsilon-tolerant checker — which
//! can confirm "feasible and plausibly optimal" but never *prove* optimality.
//! This module closes that gap: it rebuilds `S_m` with exactly-representable
//! coefficients, solves it with the exact-rational oracle in
//! `redundancy-lp::exact`, checks the four optimality conditions in ℚ, and
//! cross-checks the certified objective against the f64 path.
//!
//! ## Why a separate build
//!
//! The f64 path normalizes each detection row by its largest coefficient to
//! keep the simplex well-scaled; those quotients are rounded, and their
//! exact dyadic images carry ~2⁵² denominators that would blow through
//! `i128` after a handful of exact pivots.  Certification instead uses the
//! *unnormalized* rows
//!
//! ```text
//! (1−ε)·Σ_{i=k+1}^{m} C(i,k)·xᵢ − ε·x_k ≥ 0
//! ```
//!
//! whose coefficients are exact in f64 whenever ε is (e.g. ε = ½ gives
//! half-integers with `C(26,13) = 10 400 600` the largest numerator).
//! Positive row scaling never changes a linear program's feasible set or
//! optimum, so a certificate for the unnormalized system is a certificate
//! for the system Figure 2 solves.

use crate::error::{check_threshold, CoreError};
use crate::minimizing::{AssignmentMinimizing, MIN_DIMENSION};
use redundancy_lp::exact::solve_exact;
use redundancy_lp::{Problem, Relation, Sense};
use redundancy_rational::Rational;
use redundancy_stats::special::binomial;

/// Outcome of exactly certifying one `S_m` instance.
#[derive(Debug, Clone)]
pub struct SmCertification {
    /// System dimension `m`.
    pub dimension: usize,
    /// Exact optimal assignment count, as a rational.
    pub objective: Rational,
    /// Whether all four ℚ optimality conditions held.
    pub certified: bool,
    /// Objective reported by the f64 solve of the same system.
    pub f64_objective: f64,
    /// Relative gap between the exact and f64 objectives.
    pub relative_gap: f64,
    /// Pivots the exact solver needed.
    pub exact_pivots: usize,
}

/// Build `S_m` without the per-row normalization, so every coefficient is a
/// small dyadic rational that converts to ℚ exactly.
fn build_unnormalized_system(n: u64, epsilon: f64, dimension: usize) -> Problem {
    let mut lp = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (1..=dimension)
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    for (i, v) in vars.iter().enumerate() {
        lp.set_objective(*v, (i + 1) as f64);
    }
    let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&cover, Relation::Ge, n as f64);
    for k in 1..dimension {
        let mut terms = vec![(vars[k - 1], -epsilon)];
        for i in (k + 1)..=dimension {
            terms.push((vars[i - 1], (1.0 - epsilon) * binomial(i as u64, k as u64)));
        }
        lp.add_constraint(&terms, Relation::Ge, 0.0);
    }
    lp
}

/// Solve `S_m` in exact rational arithmetic, certify optimality in ℚ, and
/// cross-check the objective against the f64 path.
///
/// Errors use the same taxonomy as [`AssignmentMinimizing::solve`]:
/// parameter problems are rejected up front, an exact-solver failure
/// (including `i128` overflow on instances beyond the paper's sizes) maps to
/// [`CoreError::LpFailure`], and a failed certificate — which would indicate
/// a solver bug, not bad data — maps to [`CoreError::AuditFailure`].
pub fn certify_minimizing(
    n: u64,
    epsilon: f64,
    dimension: usize,
) -> Result<SmCertification, CoreError> {
    if n == 0 {
        return Err(CoreError::InvalidTaskCount {
            value: n,
            reason: "a computation needs at least one task",
        });
    }
    check_threshold(epsilon)?;
    if dimension < MIN_DIMENSION {
        return Err(CoreError::DimensionTooSmall {
            dimension,
            minimum: MIN_DIMENSION,
        });
    }
    let lp = build_unnormalized_system(n, epsilon, dimension);
    let exact = solve_exact(&lp).map_err(|e| CoreError::LpFailure {
        message: format!("exact oracle on S_{dimension}: {e}"),
    })?;
    if !exact.certificate.optimal() {
        return Err(CoreError::AuditFailure {
            report: format!(
                "S_{dimension} exact certificate failed: {:?}",
                exact.certificate
            ),
        });
    }
    let f64_objective = AssignmentMinimizing::solve(n, epsilon, dimension)?.objective();
    let exact_obj = exact.objective.to_f64();
    let relative_gap = (f64_objective - exact_obj).abs() / exact_obj.abs().max(1.0);
    Ok(SmCertification {
        dimension,
        objective: exact.objective,
        certified: true,
        f64_objective,
        relative_gap,
        exact_pivots: exact.pivots,
    })
}

/// Certify a range of dimensions (the full Figure 2 sweep).
pub fn certify_sweep(
    n: u64,
    epsilon: f64,
    dims: impl IntoIterator<Item = usize>,
) -> Result<Vec<SmCertification>, CoreError> {
    dims.into_iter()
        .map(|m| certify_minimizing(n, epsilon, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2_certifies_to_the_closed_form() {
        // S₂ at ε = ½: x₁ = 2N/3, x₂ = N/3, objective 4N/3 exactly.
        let cert = certify_minimizing(100_000, 0.5, 2).unwrap();
        assert!(cert.certified);
        assert_eq!(
            cert.objective,
            Rational::new(400_000, 3).unwrap(),
            "exact S₂ optimum"
        );
        assert!(cert.relative_gap < 1e-9, "gap {}", cert.relative_gap);
    }

    #[test]
    fn figure2_dimensions_certify_and_agree_with_f64() {
        // A spread of the Figure 2 sweep, including the top dimension with
        // the largest binomial coefficients; the full m = 2..=26 run is the
        // integration test `it_certify`.
        for m in [2usize, 5, 6, 9, 16, 26] {
            let cert = certify_minimizing(100_000, 0.5, m).unwrap();
            assert!(cert.certified, "m={m}");
            assert!(
                cert.relative_gap < 1e-8,
                "m={m}: f64 {} vs exact {} (gap {})",
                cert.f64_objective,
                cert.objective.to_f64(),
                cert.relative_gap
            );
        }
    }

    #[test]
    fn parameter_validation_matches_solver() {
        assert!(certify_minimizing(0, 0.5, 5).is_err());
        assert!(certify_minimizing(100, 1.5, 5).is_err());
        assert!(matches!(
            certify_minimizing(100, 0.5, 1),
            Err(CoreError::DimensionTooSmall { .. })
        ));
    }

    #[test]
    fn sweep_certifies_each_dimension() {
        let certs = certify_sweep(10_000, 0.5, [2, 3, 4]).unwrap();
        assert_eq!(certs.len(), 3);
        assert!(certs.iter().all(|c| c.certified));
        // S₂ attains Proposition 1's bound exactly; S₃ sits strictly above
        // it (paper §3.2), and the exact objectives witness that ordering.
        assert!(certs[1].objective > certs[0].objective);
    }
}
