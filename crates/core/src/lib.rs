#![warn(missing_docs)]

//! # redundancy-core
//!
//! A complete implementation of the task-distribution theory from
//! **"Toward an Optimal Redundancy Strategy for Distributed Computations"**
//! (Szajda, Lawson, Owen — IEEE CLUSTER 2005), plus everything needed to
//! deploy it on a real volunteer-computing platform.
//!
//! ## The problem
//!
//! Volunteer platforms (SETI@home-style) execute tasks on untrusted hosts
//! and defend result integrity with redundancy: hand out several copies of
//! each task and compare.  Plain 2-fold ("simple") redundancy fails against
//! *collusion* — an adversary holding both copies of a task returns matching
//! wrong answers and is never caught.  The paper asks for the cheapest
//! *static* assignment of multiplicities that guarantees a detection
//! probability of at least ε against a cheater **regardless of how many
//! copies of a task she controls**.
//!
//! ## What this crate provides
//!
//! | Item | Module | Paper reference |
//! |---|---|---|
//! | Distribution vectors, redundancy factors | [`distribution`] | §2.1 |
//! | Detection probabilities `P_k`, `P_{k,p}` | [`probability`] | §2.2, §5 |
//! | Simple / m-fold redundancy baseline | [`simple`] | §1 |
//! | Golle–Stubblebine geometric scheme | [`golle_stubblebine`] | §3.1 |
//! | **The Balanced distribution** | [`balanced`] | §4, Thm 1, Prop 3 |
//! | Assignment-minimizing LP optima `S_m` | [`minimizing`] | §3.2, Fact 1 |
//! | Lower bound & equality property | [`bounds`] | Prop 1, Prop 2 |
//! | Integer plans, tail partition, ringers | [`plan`] | §6 |
//! | Minimum-multiplicity extension | [`extended`] | §7 |
//! | Scheme-selection advisor | [`advisor`] | §4–5 discussion |
//!
//! ## Quickstart
//!
//! ```
//! use redundancy_core::{Balanced, RealizedPlan, Scheme};
//!
//! // One million tasks, guarantee 75% cheat-detection at any tuple size.
//! let scheme = Balanced::new(1_000_000, 0.75)?;
//! assert!(scheme.redundancy_factor_exact() < 2.0); // cheaper than 2-fold!
//!
//! // Deployable integer plan: floors + tail partition + 2 ringers.
//! let plan = RealizedPlan::balanced(1_000_000, 0.75)?;
//! assert!(plan.effective_detection(0.0)? >= 0.75);
//! assert_eq!(plan.ringer_tasks(), 2);
//! # Ok::<(), redundancy_core::CoreError>(())
//! ```

pub mod advisor;
pub mod balanced;
pub mod bounds;
pub mod certify;
pub mod distribution;
pub mod error;
pub mod extended;
pub mod golle_stubblebine;
pub mod minimizing;
pub mod plan;
pub mod probability;
pub mod scheme;
pub mod simple;

pub use advisor::{advise, comparison_row, reference_plans, Advice, Requirements};
pub use balanced::Balanced;
pub use bounds::{equality_gap, lower_bound_factor, wasted_assignments};
pub use certify::{certify_minimizing, certify_sweep, SmCertification};
pub use distribution::Distribution;
pub use error::CoreError;
pub use extended::ExtendedBalanced;
pub use golle_stubblebine::GolleStubblebine;
pub use minimizing::AssignmentMinimizing;
pub use plan::{Partition, PartitionKind, RealizedPlan};
pub use probability::DetectionProfile;
pub use scheme::Scheme;
pub use simple::KFold;
