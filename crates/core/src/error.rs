//! Error type for the redundancy-core crate.

use std::fmt;

/// Errors raised while constructing or analyzing distribution schemes.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Detection threshold ε outside the open interval (0, 1).
    InvalidThreshold {
        /// The rejected value.
        value: f64,
    },
    /// Task count of zero (or too small for the requested scheme).
    InvalidTaskCount {
        /// The rejected value.
        value: u64,
        /// Why this count is unusable.
        reason: &'static str,
    },
    /// Adversary proportion outside `[0, 1)`.
    InvalidProportion {
        /// The rejected value.
        value: f64,
    },
    /// Golle–Stubblebine ratio outside the open interval (0, 1).
    InvalidRatio {
        /// The rejected value.
        value: f64,
    },
    /// A dimension parameter too small to form a valid distribution.
    DimensionTooSmall {
        /// The rejected dimension.
        dimension: usize,
        /// Smallest acceptable dimension.
        minimum: usize,
    },
    /// Minimum-multiplicity parameter of the extended Balanced distribution
    /// out of range.
    InvalidMinMultiplicity {
        /// The rejected value.
        value: usize,
    },
    /// The embedded LP solver failed (with its message) — should not happen
    /// for well-posed `S_m` systems and indicates a parameterization bug.
    LpFailure {
        /// Stringified solver error.
        message: String,
    },
    /// The LP solution failed the independent optimality audit.
    AuditFailure {
        /// Stringified audit report.
        report: String,
    },
    /// Requested non-asymptotic threshold is unreachable (e.g. a GS ratio
    /// `c ≥ 1` would be needed).
    UnreachableThreshold {
        /// The requested detection threshold.
        epsilon: f64,
        /// The adversary proportion that makes it unreachable.
        proportion: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidThreshold { value } => {
                write!(f, "detection threshold must satisfy 0 < ε < 1, got {value}")
            }
            CoreError::InvalidTaskCount { value, reason } => {
                write!(f, "task count {value} is unusable: {reason}")
            }
            CoreError::InvalidProportion { value } => {
                write!(f, "adversary proportion must satisfy 0 ≤ p < 1, got {value}")
            }
            CoreError::InvalidRatio { value } => {
                write!(f, "Golle–Stubblebine ratio must satisfy 0 < c < 1, got {value}")
            }
            CoreError::DimensionTooSmall { dimension, minimum } => {
                write!(f, "dimension {dimension} too small; need at least {minimum}")
            }
            CoreError::InvalidMinMultiplicity { value } => {
                write!(f, "minimum multiplicity must be ≥ 1, got {value}")
            }
            CoreError::LpFailure { message } => write!(f, "LP solver failure: {message}"),
            CoreError::AuditFailure { report } => {
                write!(f, "LP solution failed independent audit: {report}")
            }
            CoreError::UnreachableThreshold { epsilon, proportion } => write!(
                f,
                "threshold ε = {epsilon} unreachable when the adversary controls proportion p = {proportion}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Validate `0 < ε < 1`.
pub(crate) fn check_threshold(epsilon: f64) -> Result<(), CoreError> {
    if epsilon.is_finite() && 0.0 < epsilon && epsilon < 1.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidThreshold { value: epsilon })
    }
}

/// Validate `0 ≤ p < 1`.
pub(crate) fn check_proportion(p: f64) -> Result<(), CoreError> {
    if p.is_finite() && (0.0..1.0).contains(&p) {
        Ok(())
    } else {
        Err(CoreError::InvalidProportion { value: p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_validation() {
        assert!(check_threshold(0.5).is_ok());
        assert!(check_threshold(0.0).is_err());
        assert!(check_threshold(1.0).is_err());
        assert!(check_threshold(f64::NAN).is_err());
        assert!(check_threshold(-0.1).is_err());
    }

    #[test]
    fn proportion_validation() {
        assert!(check_proportion(0.0).is_ok());
        assert!(check_proportion(0.999).is_ok());
        assert!(check_proportion(1.0).is_err());
        assert!(check_proportion(-0.01).is_err());
        assert!(check_proportion(f64::INFINITY).is_err());
    }

    #[test]
    fn display_messages() {
        assert!(CoreError::InvalidThreshold { value: 2.0 }
            .to_string()
            .contains("0 < ε < 1"));
        assert!(CoreError::DimensionTooSmall {
            dimension: 1,
            minimum: 2
        }
        .to_string()
        .contains("at least 2"));
        assert!(CoreError::UnreachableThreshold {
            epsilon: 0.9,
            proportion: 0.5
        }
        .to_string()
        .contains("unreachable"));
    }
}
