//! The central [`Distribution`] type: how many tasks receive each
//! multiplicity.
//!
//! Following Section 2.1 of the paper, a redundancy-based distribution
//! scheme for an `N`-task computation is a vector `x = (x₁, x₂, x₃, …)`
//! with non-negative (possibly fractional, in the theoretical setting)
//! components, where `xᵢ` tasks are assigned with multiplicity `i`.  The
//! *dimension* is the largest index with `xᵢ > 0`; the *redundancy factor*
//! is `Σ i·xᵢ / N`.

/// A (possibly fractional) task-multiplicity distribution.
///
/// Index convention: `weight(i)` is `x_i`, the number of tasks assigned
/// with multiplicity `i ≥ 1`.  Internally weights are stored dense from
/// multiplicity 1 upward.
///
/// ```
/// use redundancy_core::Distribution;
/// // Simple redundancy on 100 tasks: x₂ = 100.
/// let d = Distribution::from_weights(vec![0.0, 100.0]);
/// assert_eq!(d.total_tasks(), 100.0);
/// assert_eq!(d.total_assignments(), 200.0);
/// assert_eq!(d.redundancy_factor(), 2.0);
/// assert_eq!(d.dimension(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// `weights[j]` is `x_{j+1}`.
    weights: Vec<f64>,
}

impl Distribution {
    /// Build from a dense weight vector starting at multiplicity 1.
    ///
    /// Trailing zeros are trimmed; negative or non-finite entries are
    /// clamped-rejected via a panic in debug and treated as zero in release
    /// only if within `-1e-9` (numerical dust from an LP solve) — anything
    /// more negative panics.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        let mut weights = weights;
        for w in &mut weights {
            assert!(w.is_finite(), "distribution weight must be finite");
            assert!(
                *w > -1e-6,
                "distribution weight significantly negative: {w}"
            );
            if *w < 0.0 {
                *w = 0.0;
            }
        }
        while weights.last() == Some(&0.0) {
            weights.pop();
        }
        Distribution { weights }
    }

    /// The empty distribution (zero tasks).
    pub fn empty() -> Self {
        Distribution { weights: vec![] }
    }

    /// `x_i`: number of tasks with multiplicity `i` (0 for any `i` outside
    /// the stored range, including `i = 0`).
    pub fn weight(&self, multiplicity: usize) -> f64 {
        if multiplicity == 0 {
            return 0.0;
        }
        self.weights.get(multiplicity - 1).copied().unwrap_or(0.0)
    }

    /// Largest multiplicity with nonzero weight (0 for the empty
    /// distribution).
    pub fn dimension(&self) -> usize {
        self.weights.len()
    }

    /// `Σ xᵢ` — the number of tasks covered.
    pub fn total_tasks(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// `Σ i·xᵢ` — the number of assignments handed out.
    pub fn total_assignments(&self) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(j, &w)| (j + 1) as f64 * w)
            .sum()
    }

    /// Redundancy factor `Σ i·xᵢ / Σ xᵢ` (0 for the empty distribution).
    pub fn redundancy_factor(&self) -> f64 {
        let tasks = self.total_tasks();
        if tasks == 0.0 {
            0.0
        } else {
            self.total_assignments() / tasks
        }
    }

    /// Iterate `(multiplicity, weight)` over nonzero entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(j, &w)| (j + 1, w))
    }

    /// Borrow the dense weight vector (index 0 ↦ multiplicity 1).
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Proportion of tasks at each multiplicity: `xᵢ / Σ xⱼ`.
    pub fn proportions(&self) -> Vec<f64> {
        let total = self.total_tasks();
        if total == 0.0 {
            return vec![];
        }
        self.weights.iter().map(|&w| w / total).collect()
    }

    /// Scale every weight by `factor` (e.g. to renormalize task counts).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "bad scale factor");
        Distribution::from_weights(self.weights.iter().map(|&w| w * factor).collect())
    }

    /// Sum of weights at multiplicities `≥ m`.
    pub fn tail_mass(&self, m: usize) -> f64 {
        if m <= 1 {
            return self.total_tasks();
        }
        self.weights.iter().skip(m - 1).sum()
    }
}

impl redundancy_json::ToJson for Distribution {
    fn to_json(&self) -> redundancy_json::Json {
        redundancy_json::obj(vec![("weights", self.weights.to_json())])
    }
}

impl redundancy_json::FromJson for Distribution {
    fn from_json(value: &redundancy_json::Json) -> Result<Self, redundancy_json::JsonError> {
        let weights = Vec::<f64>::from_json(value.field("weights")?)?;
        Ok(Distribution::from_weights(weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_redundancy_shape() {
        let d = Distribution::from_weights(vec![0.0, 1000.0]);
        assert_eq!(d.dimension(), 2);
        assert_eq!(d.weight(1), 0.0);
        assert_eq!(d.weight(2), 1000.0);
        assert_eq!(d.weight(3), 0.0);
        assert_eq!(d.weight(0), 0.0);
        assert_eq!(d.total_tasks(), 1000.0);
        assert_eq!(d.total_assignments(), 2000.0);
        assert_eq!(d.redundancy_factor(), 2.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let d = Distribution::from_weights(vec![1.0, 0.0, 0.0]);
        assert_eq!(d.dimension(), 1);
    }

    #[test]
    fn empty_distribution() {
        let d = Distribution::empty();
        assert_eq!(d.dimension(), 0);
        assert_eq!(d.total_tasks(), 0.0);
        assert_eq!(d.redundancy_factor(), 0.0);
        assert!(d.proportions().is_empty());
    }

    #[test]
    fn numerical_dust_clamped() {
        let d = Distribution::from_weights(vec![5.0, -1e-12]);
        assert_eq!(d.weight(2), 0.0);
        assert_eq!(d.dimension(), 1);
    }

    #[test]
    #[should_panic(expected = "significantly negative")]
    fn large_negative_rejected() {
        let _ = Distribution::from_weights(vec![-1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Distribution::from_weights(vec![f64::NAN]);
    }

    #[test]
    fn iter_skips_zeros() {
        let d = Distribution::from_weights(vec![1.0, 0.0, 3.0]);
        let items: Vec<_> = d.iter().collect();
        assert_eq!(items, vec![(1, 1.0), (3, 3.0)]);
    }

    #[test]
    fn proportions_sum_to_one() {
        let d = Distribution::from_weights(vec![1.0, 2.0, 7.0]);
        let p = d.proportions();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[2], 0.7);
    }

    #[test]
    fn scaled_and_tail_mass() {
        let d = Distribution::from_weights(vec![2.0, 4.0, 6.0]);
        let s = d.scaled(0.5);
        assert_eq!(s.weight(3), 3.0);
        assert_eq!(d.tail_mass(2), 10.0);
        assert_eq!(d.tail_mass(1), 12.0);
        assert_eq!(d.tail_mass(4), 0.0);
    }

    #[test]
    fn json_round_trip() {
        let d = Distribution::from_weights(vec![1.5, 0.0, 2.5]);
        let json = redundancy_json::to_string(&d);
        let back: Distribution = redundancy_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
