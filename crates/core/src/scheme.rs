//! The [`Scheme`] trait unifying every task-distribution strategy.
//!
//! A scheme knows how to lay out an `N`-task computation as a
//! [`Distribution`] and (optionally) what asymptotic detection threshold it
//! guarantees.  Everything else — detection probabilities, redundancy
//! factors, integer realizations — is derived uniformly through the
//! [`DetectionProfile`](crate::DetectionProfile) engine, so closed forms in
//! individual schemes can always be cross-checked against the generic path.

use crate::distribution::Distribution;
use crate::error::CoreError;
use crate::probability::DetectionProfile;

/// A redundancy-based task-distribution scheme.
pub trait Scheme {
    /// Short human-readable name ("balanced", "golle-stubblebine", …).
    fn name(&self) -> &'static str;

    /// Number of tasks in the computation.
    fn n_tasks(&self) -> u64;

    /// The (possibly fractional) theoretical distribution.
    fn distribution(&self) -> Distribution;

    /// The asymptotic detection threshold this scheme guarantees for every
    /// tuple size, if any.  Simple redundancy returns `Some(0.0)`: it
    /// guarantees nothing against a colluding pair-holder.
    fn guaranteed_detection(&self) -> Option<f64>;

    /// Detection profile of the theoretical distribution (no precomputing).
    fn detection_profile(&self) -> DetectionProfile {
        DetectionProfile::from_distribution(&self.distribution())
    }

    /// Redundancy factor of the theoretical distribution.
    fn redundancy_factor(&self) -> f64 {
        self.distribution().redundancy_factor()
    }

    /// Total assignments of the theoretical distribution.
    fn total_assignments(&self) -> f64 {
        self.distribution().total_assignments()
    }

    /// Effective (minimum over k) detection probability at adversary
    /// proportion `p`, computed generically from the distribution.
    fn effective_detection(&self, p: f64) -> Result<f64, CoreError> {
        self.detection_profile().effective_detection(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal scheme used to exercise the provided methods.
    struct Flat {
        n: u64,
        mult: usize,
    }

    impl Scheme for Flat {
        fn name(&self) -> &'static str {
            "flat"
        }
        fn n_tasks(&self) -> u64 {
            self.n
        }
        fn distribution(&self) -> Distribution {
            let mut w = vec![0.0; self.mult];
            w[self.mult - 1] = self.n as f64;
            Distribution::from_weights(w)
        }
        fn guaranteed_detection(&self) -> Option<f64> {
            Some(0.0)
        }
    }

    #[test]
    fn provided_methods_flow_through() {
        let s = Flat { n: 100, mult: 3 };
        assert_eq!(s.redundancy_factor(), 3.0);
        assert_eq!(s.total_assignments(), 300.0);
        assert_eq!(s.effective_detection(0.0).unwrap(), 0.0);
        assert_eq!(s.detection_profile().p_asymptotic(3), Some(0.0));
        assert_eq!(s.detection_profile().p_asymptotic(1), Some(1.0));
    }
}
