//! The Balanced distribution — the paper's primary contribution
//! (Section 4, Theorem 1, Proposition 3).
//!
//! For detection threshold `0 < ε < 1`, let `γ = ln(1/(1−ε))`.  The
//! Balanced distribution assigns
//!
//! ```text
//! aᵢ = N · ((1−ε)/ε) · γ^i / i!          for i = 1, 2, 3, …
//! ```
//!
//! i.e. `N` times the zero-truncated Poisson(γ) law.  Theorem 1 (proved in
//! the paper's Appendix C, verified exhaustively by this crate's tests):
//!
//! 1. `Σ aᵢ = N` — every task is covered;
//! 2. `P_k = ε` for **every** tuple size `k` — no resources are wasted
//!    over-protecting any tuple size (the inefficiency of
//!    Golle–Stubblebine), and by Proposition 2 this equality is necessary
//!    for the cheapest `p`-robust distribution;
//! 3. total assignments `= (N/ε)·ln(1/(1−ε))`, i.e. redundancy factor
//!    `γ/ε` — below Golle–Stubblebine's `1/√(1−ε)` on all of `(0,1)` and
//!    below simple redundancy's 2 for `ε ≲ 0.797`.
//!
//! Proposition 3: against an adversary holding proportion `p` of
//! assignments, `P_{k,p} = 1 − (1−ε)^{1−p}` — again independent of `k`,
//! and decaying only slowly in `p` (unlike the assignment-minimizing LP
//! optima, whose minima collapse; see Figure 1).

use crate::distribution::Distribution;
use crate::error::{check_proportion, check_threshold, CoreError};
use crate::scheme::Scheme;

/// Relative weight below which the ideal Poisson tail is truncated when
/// materializing a [`Distribution`] (closed forms remain exact).
const TAIL_CUTOFF: f64 = 1e-12;

/// The Balanced distribution at threshold ε over `n` tasks.
///
/// ```
/// use redundancy_core::{Balanced, Scheme};
/// let bal = Balanced::new(1_000_000, 0.5)?;
/// // Theorem 1: every tuple size is protected at exactly ε...
/// assert_eq!(bal.p_asymptotic(7), 0.5);
/// // ...at redundancy factor ln(2)/0.5 ≈ 1.386 — beating 2-fold redundancy.
/// assert!((bal.redundancy_factor_exact() - 1.3863).abs() < 1e-4);
/// # Ok::<(), redundancy_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Balanced {
    n: u64,
    epsilon: f64,
}

impl Balanced {
    /// Create the Balanced distribution for `n` tasks at threshold
    /// `0 < ε < 1`.
    pub fn new(n: u64, epsilon: f64) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidTaskCount {
                value: n,
                reason: "a computation needs at least one task",
            });
        }
        check_threshold(epsilon)?;
        Ok(Balanced { n, epsilon })
    }

    /// Tune the Balanced distribution so the guarantee holds even when the
    /// adversary controls proportion `p` of assignments: by Proposition 3,
    /// `P_{k,p} = 1 − (1−ε')^{1−p} ≥ ε` needs `ε' = 1 − (1−ε)^{1/(1−p)}`.
    ///
    /// Fails with [`CoreError::UnreachableThreshold`] when the boosted
    /// threshold would reach 1 (not actually possible for `p < 1` at finite
    /// precision unless ε is already ≈ 1).
    pub fn for_threshold_nonasymptotic(n: u64, epsilon: f64, p: f64) -> Result<Self, CoreError> {
        check_threshold(epsilon)?;
        check_proportion(p)?;
        let boosted = 1.0 - (1.0 - epsilon).powf(1.0 / (1.0 - p));
        if boosted >= 1.0 || boosted.is_nan() {
            return Err(CoreError::UnreachableThreshold {
                epsilon,
                proportion: p,
            });
        }
        Balanced::new(n, boosted)
    }

    /// The detection threshold ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The Poisson parameter `γ = ln(1/(1−ε))`.
    pub fn gamma(&self) -> f64 {
        (1.0 / (1.0 - self.epsilon)).ln()
    }

    /// Ideal (fractional) weight `aᵢ = N((1−ε)/ε)·γ^i/i!`.
    pub fn ideal_weight(&self, i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let gamma = self.gamma();
        // Product recurrence avoids overflow for any realistic i.
        let mut w = n * (1.0 - self.epsilon) / self.epsilon;
        for j in 1..=i {
            w *= gamma / j as f64;
        }
        w
    }

    /// Closed-form asymptotic detection probability: exactly ε for every
    /// `k ≥ 1` (Theorem 1, property 2).
    pub fn p_asymptotic(&self, _k: usize) -> f64 {
        self.epsilon
    }

    /// Closed-form non-asymptotic detection probability
    /// `P_{k,p} = 1 − (1−ε)^{1−p}` (Proposition 3) — independent of `k`.
    pub fn p_nonasymptotic(&self, _k: usize, p: f64) -> Result<f64, CoreError> {
        check_proportion(p)?;
        Ok(1.0 - (1.0 - self.epsilon).powf(1.0 - p))
    }

    /// Closed-form total assignments `(N/ε)·ln(1/(1−ε))` (Theorem 1,
    /// property 3).
    pub fn total_assignments_exact(&self) -> f64 {
        self.n as f64 * self.gamma() / self.epsilon
    }

    /// Closed-form redundancy factor `γ/ε = ln(1/(1−ε))/ε`.
    pub fn redundancy_factor_exact(&self) -> f64 {
        self.gamma() / self.epsilon
    }

    /// Redundancy factor as a pure function of ε (for Figure 3 sweeps).
    pub fn factor_for_threshold(epsilon: f64) -> Result<f64, CoreError> {
        check_threshold(epsilon)?;
        Ok((1.0 / (1.0 - epsilon)).ln() / epsilon)
    }

    /// The threshold ε* at which the Balanced distribution costs exactly as
    /// much as simple redundancy (`γ/ε = 2`); below it, Balanced is cheaper.
    ///
    /// Solved numerically once: ε* ≈ 0.7968.
    pub fn break_even_with_simple() -> f64 {
        // Bisection on f(ε) = ln(1/(1−ε)) − 2ε, decreasing-then-increasing;
        // the nonzero root lies in (0.5, 0.99).
        let f = |e: f64| (1.0 / (1.0 - e)).ln() - 2.0 * e;
        let (mut lo, mut hi) = (0.5, 0.99);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

impl Scheme for Balanced {
    fn name(&self) -> &'static str {
        "balanced"
    }

    fn n_tasks(&self) -> u64 {
        self.n
    }

    /// Materialize the ideal weights, truncating once a term falls below a
    /// `TAIL_CUTOFF` fraction of `N`; the truncated mass is folded into the
    /// final bucket so `Σ aᵢ = N` exactly.
    fn distribution(&self) -> Distribution {
        let n = self.n as f64;
        let gamma = self.gamma();
        let mut weights = Vec::new();
        let mut remaining = n;
        let mut w = n * (1.0 - self.epsilon) / self.epsilon * gamma; // a₁
        let mut i = 1usize;
        while remaining > TAIL_CUTOFF * n && w > TAIL_CUTOFF * n {
            let take = w.min(remaining);
            weights.push(take);
            remaining -= take;
            i += 1;
            w *= gamma / i as f64;
        }
        if remaining > 0.0 {
            weights.push(remaining);
        }
        Distribution::from_weights(weights)
    }

    fn guaranteed_detection(&self) -> Option<f64> {
        Some(self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Balanced::new(0, 0.5).is_err());
        assert!(Balanced::new(10, 0.0).is_err());
        assert!(Balanced::new(10, 1.0).is_err());
        assert!(Balanced::new(10, 0.5).is_ok());
    }

    #[test]
    fn nonasymptotic_tuning_delivers_at_p() {
        let b = Balanced::for_threshold_nonasymptotic(100_000, 0.5, 0.2).unwrap();
        // By construction P_{k,0.2} = 0.5 exactly.
        let at_p = b.p_nonasymptotic(1, 0.2).unwrap();
        assert!((at_p - 0.5).abs() < 1e-12, "{at_p}");
        assert!(b.epsilon() > 0.5, "boosted eps {}", b.epsilon());
        // Degenerate request near eps = 1 with huge p fails loudly.
        assert!(matches!(
            Balanced::for_threshold_nonasymptotic(100, 1.0 - 1e-17, 0.9),
            Err(CoreError::UnreachableThreshold { .. }) | Err(CoreError::InvalidThreshold { .. })
        ));
        assert!(Balanced::for_threshold_nonasymptotic(100, 0.5, 1.0).is_err());
    }

    #[test]
    fn gamma_at_half_is_ln2() {
        let b = Balanced::new(100, 0.5).unwrap();
        assert!((b.gamma() - std::f64::consts::LN_2).abs() < 1e-15);
        assert_eq!(b.epsilon(), 0.5);
    }

    #[test]
    fn theorem1_property1_weights_sum_to_n() {
        for eps in [0.1, 0.5, 0.75, 0.9, 0.99] {
            let b = Balanced::new(1_000_000, eps).unwrap();
            let total: f64 = (1..200).map(|i| b.ideal_weight(i)).sum();
            assert!((total - 1_000_000.0).abs() < 1e-4, "ε={eps}: Σaᵢ = {total}");
        }
    }

    #[test]
    fn theorem1_property2_detection_is_eps_for_all_k() {
        // The generic tuple-counting engine must report P_k = ε for every k
        // on the materialized distribution.
        for eps in [0.25, 0.5, 0.75] {
            let b = Balanced::new(1_000_000, eps).unwrap();
            let prof = b.detection_profile();
            // P_k of the *truncated* distribution is distorted near the
            // truncation dimension (for k close to dim, the missing
            // infinite tail contributes k-tuples comparably to the tiny
            // x_k itself, however small the cutoff); restrict to the front
            // half, where every experiment in the paper actually lives.
            let dim = prof.dimension();
            for k in 1..=dim / 2 {
                let pk = prof.p_asymptotic(k).unwrap();
                assert!((pk - eps).abs() < 1e-4, "ε={eps}, k={k}: P_k = {pk}");
            }
        }
    }

    #[test]
    fn theorem1_property3_total_assignments() {
        let b = Balanced::new(1_000_000, 0.5).unwrap();
        let exact = b.total_assignments_exact();
        assert!((exact - 1_000_000.0 * std::f64::consts::LN_2 / 0.5).abs() < 1e-6);
        let materialized = b.distribution().total_assignments();
        assert!(
            (materialized - exact).abs() / exact < 1e-9,
            "{materialized} vs {exact}"
        );
    }

    #[test]
    fn proposition3_nonasymptotic_closed_form() {
        let b = Balanced::new(1_000_000, 0.5).unwrap();
        let prof = b.detection_profile();
        for &p in &[0.0, 0.05, 0.1, 0.3] {
            let closed = b.p_nonasymptotic(1, p).unwrap();
            assert!((closed - (1.0 - 0.5f64.powf(1.0 - p))).abs() < 1e-12);
            let dim = prof.dimension();
            for k in 1..=dim / 2 {
                let generic = prof.p_nonasymptotic(k, p).unwrap().unwrap();
                assert!(
                    (generic - closed).abs() < 1e-4,
                    "k={k}, p={p}: generic {generic} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn beats_golle_stubblebine_everywhere() {
        // Theorem: ln(1/(1−ε))/ε < 1/√(1−ε) on (0,1).
        for i in 1..100 {
            let eps = i as f64 / 100.0;
            let bal = Balanced::factor_for_threshold(eps).unwrap();
            let gs = 1.0 / (1.0 - eps).sqrt();
            assert!(bal < gs, "ε={eps}: balanced {bal} ≥ GS {gs}");
        }
    }

    #[test]
    fn break_even_with_simple_near_0_797() {
        let e = Balanced::break_even_with_simple();
        assert!((0.79..0.81).contains(&e), "{e}");
        assert!(Balanced::factor_for_threshold(e - 0.01).unwrap() < 2.0);
        assert!(Balanced::factor_for_threshold(e + 0.01).unwrap() > 2.0);
    }

    #[test]
    fn fig4_scale_savings_over_gs_and_simple() {
        // N = 10⁶, ε = 0.75: Balanced ≈ 1.848 M assignments vs 2.0 M for
        // both GS and simple — "savings of more than 50,000 assignments
        // over both" (Section 4 / Figure 4).
        let b = Balanced::new(1_000_000, 0.75).unwrap();
        let bal = b.total_assignments_exact();
        let gs = 1_000_000.0 / (1.0 - 0.75f64).sqrt();
        let simple = 2_000_000.0;
        assert!((bal - 1_848_392.0).abs() < 1_000.0, "{bal}");
        assert!(gs - bal > 50_000.0);
        assert!(simple - bal > 50_000.0);
    }

    #[test]
    fn ideal_weight_edge_cases() {
        let b = Balanced::new(100, 0.5).unwrap();
        assert_eq!(b.ideal_weight(0), 0.0);
        assert!(b.ideal_weight(1) > b.ideal_weight(2));
        // Weights must decay to (numerically) zero.
        assert!(b.ideal_weight(80) < 1e-60);
    }

    #[test]
    fn proportions_match_zero_truncated_poisson() {
        let b = Balanced::new(1_000_000, 0.75).unwrap();
        let d = b.distribution();
        let props = d.proportions();
        let gamma = b.gamma();
        for (idx, &prop) in props.iter().enumerate().take(8) {
            let i = (idx + 1) as u64;
            let ztp = redundancy_stats::special::zero_truncated_poisson_pmf(gamma, i);
            assert!((prop - ztp).abs() < 1e-9, "i={i}: {prop} vs ZTP {ztp}");
        }
    }
}
