//! Property-based tests for redundancy-core, focused on the relationships
//! between schemes, plans, and the detection engine.

use proptest::prelude::*;
use redundancy_core::{
    AssignmentMinimizing, Balanced, DetectionProfile, ExtendedBalanced, GolleStubblebine,
    RealizedPlan, Scheme,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The detection engine is scale-invariant: multiplying every task
    /// count by a constant leaves every P_{k,p} unchanged.
    #[test]
    fn detection_is_scale_invariant(
        weights in proptest::collection::vec(0.0f64..1e4, 1..10),
        scale in 0.1f64..50.0,
        p_cent in 0u32..90,
    ) {
        let a = DetectionProfile::from_normal(weights.clone());
        let b = DetectionProfile::from_normal(
            weights.iter().map(|w| w * scale).collect());
        let p = p_cent as f64 / 100.0;
        for k in 1..=a.dimension() {
            let pa = a.p_nonasymptotic(k, p).unwrap();
            let pb = b.p_nonasymptotic(k, p).unwrap();
            match (pa, pb) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9, "k={}", k),
                (None, None) => {}
                _ => prop_assert!(false, "presence mismatch at k={}", k),
            }
        }
    }

    /// P_{k,p} is non-increasing in p for every profile and k (more
    /// adversary control never helps the supervisor).
    #[test]
    fn detection_monotone_in_p(
        weights in proptest::collection::vec(0.0f64..1e4, 2..8),
    ) {
        let prof = DetectionProfile::from_normal(weights);
        for k in 1..=prof.dimension() {
            let mut prev = f64::INFINITY;
            for step in 0..10 {
                let p = step as f64 * 0.1;
                if let Some(v) = prof.p_nonasymptotic(k, p).unwrap() {
                    prop_assert!(v <= prev + 1e-12, "k={} p={}", k, p);
                    prev = v;
                }
            }
        }
    }

    /// The Balanced guarantee is tight: lowering ε strictly lowers cost,
    /// and the cost function is continuous in ε (no realization cliffs
    /// bigger than rounding).
    #[test]
    fn balanced_cost_monotone_in_eps(eps_cent in 10u32..90) {
        let n = 100_000u64;
        let lo = Balanced::new(n, eps_cent as f64 / 100.0).unwrap();
        let hi = Balanced::new(n, (eps_cent + 5) as f64 / 100.0).unwrap();
        prop_assert!(hi.total_assignments_exact() > lo.total_assignments_exact());
        let plan_lo = RealizedPlan::balanced(n, eps_cent as f64 / 100.0).unwrap();
        let diff = plan_lo.total_assignments() as f64 - lo.total_assignments_exact();
        prop_assert!(diff.abs() < 0.01 * lo.total_assignments_exact(),
            "realization cliff {}", diff);
    }

    /// GS tuned for a threshold is never cheaper than Balanced at the same
    /// threshold, for any N (Figure 3 pointwise, at realized-plan level).
    #[test]
    fn gs_never_cheaper_than_balanced(
        n in 10_000u64..300_000,
        eps_cent in 10u32..90,
    ) {
        let eps = eps_cent as f64 / 100.0;
        let bal = Balanced::new(n, eps).unwrap();
        let gs = GolleStubblebine::for_threshold(n, eps).unwrap();
        prop_assert!(gs.total_assignments_exact() > bal.total_assignments_exact());
    }

    /// Extended Balanced at min multiplicity m never assigns below m and
    /// always costs at least m per task.
    #[test]
    fn extended_respects_minimum(
        n in 1_000u64..200_000,
        eps_cent in 10u32..90,
        m in 1usize..6,
    ) {
        let eps = eps_cent as f64 / 100.0;
        let ext = ExtendedBalanced::new(n, eps, m).unwrap();
        let d = ext.distribution();
        for i in 1..m {
            prop_assert_eq!(d.weight(i), 0.0);
        }
        prop_assert!(ext.redundancy_factor_exact() >= m as f64 - 1e-9);
    }

    /// S_m optima: feasible, cheaper than or equal to the (m-truncated)
    /// Balanced cost, and never below the Proposition 1 bound.
    #[test]
    fn minimizing_sandwich(
        n in 10_000u64..200_000,
        eps_cent in 20u32..80,
        dim in 3usize..14,
    ) {
        let eps = eps_cent as f64 / 100.0;
        let sol = AssignmentMinimizing::solve(n, eps, dim).unwrap();
        let bound = redundancy_core::bounds::lower_bound_assignments(n, eps).unwrap();
        prop_assert!(sol.objective() >= bound - 1e-6 * bound);
        // The Balanced distribution is infinite-dimensional; only from a
        // moderate dimension on is the finite optimum guaranteed to undercut
        // it (at very small m the truncation premium can exceed Balanced's
        // equality-shaped cost — observed at e.g. N=10⁴, ε=0.2, m=4).
        if dim >= 10 {
            let bal = Balanced::new(n, eps).unwrap();
            prop_assert!(sol.objective() <= bal.total_assignments_exact() * (1.0 + 1e-9));
        }
        prop_assert!(sol.verified_profile().satisfies_threshold(eps, 1e-6));
    }

    /// Plans survive a JSON round trip byte-for-byte semantically.
    #[test]
    fn plan_json_round_trip(
        n in 1_000u64..100_000,
        eps_cent in 10u32..95,
    ) {
        let plan = RealizedPlan::balanced(n, eps_cent as f64 / 100.0).unwrap();
        let json = redundancy_json::to_string(&plan);
        let back: RealizedPlan = redundancy_json::from_str(&json).unwrap();
        prop_assert_eq!(plan, back);
    }

    /// `verify_bucket` conserves tasks and never lowers any detection
    /// probability.
    #[test]
    fn verification_only_helps(
        weights in proptest::collection::vec(1.0f64..1e4, 2..8),
        bucket in 1usize..8,
    ) {
        let before = DetectionProfile::from_normal(weights.clone());
        let after = DetectionProfile::from_normal(weights).verify_bucket(bucket);
        prop_assert!((before.total_tasks() - after.total_tasks()).abs() < 1e-9);
        for k in 1..=before.dimension() {
            if let (Some(b), Some(a)) = (before.p_asymptotic(k), after.p_asymptotic(k)) {
                prop_assert!(a >= b - 1e-12, "k={}: {} -> {}", k, b, a);
            }
        }
    }
}
