#![warn(missing_docs)]

//! # redundancy-rational — checked `i128` rational arithmetic
//!
//! The exact-LP oracle in `redundancy-lp` certifies simplex optima in ℚ,
//! which needs a rational type with three properties the standard library
//! does not provide:
//!
//! * **exact construction from problem data**: every finite `f64` is a
//!   dyadic rational `m·2^e` and [`Rational::from_f64`] recovers it exactly
//!   from the IEEE-754 bit pattern — no decimal round trip, no epsilon;
//! * **overflow promotion to errors**: all arithmetic is checked, and a
//!   product or sum that leaves the `i128` range surfaces as
//!   [`RationalError::Overflow`] instead of wrapping or panicking, so a
//!   certification run on data too large for 128-bit exactness fails
//!   loudly and the caller can fall back to the floating-point audit;
//! * **total ordering without widening**: comparisons cross-multiply in
//!   256 bits internally, so `Ord` never overflows and never errors.
//!
//! Values are kept normalized (positive denominator, reduced by gcd) and
//! operands are cross-reduced before multiplying, which delays overflow far
//! beyond naive numerator/denominator growth.

use std::cmp::Ordering;
use std::fmt;

/// Failures of checked rational arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RationalError {
    /// An intermediate or final value left the `i128` range.
    Overflow {
        /// The operation that overflowed (for diagnostics).
        operation: &'static str,
    },
    /// A zero denominator or division by an exact zero.
    DivisionByZero,
    /// Conversion from a non-finite `f64` (NaN or ±∞).
    NonFinite,
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::Overflow { operation } => {
                write!(f, "rational {operation} overflowed i128")
            }
            RationalError::DivisionByZero => write!(f, "rational division by zero"),
            RationalError::NonFinite => write!(f, "cannot represent a non-finite f64 exactly"),
        }
    }
}

impl std::error::Error for RationalError {}

/// An exact rational number `num/den` with `den > 0` and `gcd(|num|, den) = 1`.
///
/// ```
/// use redundancy_rational::Rational;
/// let half = Rational::new(1, 2).unwrap();
/// let third = Rational::new(1, 3).unwrap();
/// let sum = half.checked_add(third).unwrap();
/// assert_eq!(sum, Rational::new(5, 6).unwrap());
/// assert_eq!(Rational::from_f64(0.5).unwrap(), half);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Widening unsigned multiply: `a·b` as `(high, low)` 128-bit limbs.
fn widening_mul_u128(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let low = (mid << 64) | (ll & MASK);
    let high = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (high, low)
}

impl Rational {
    /// The exact zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The exact one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct and normalize `num/den`.
    pub fn new(num: i128, den: i128) -> Result<Rational, RationalError> {
        if den == 0 {
            return Err(RationalError::DivisionByZero);
        }
        // i128::MIN has no absolute value / negation; rejecting it keeps
        // `neg` and `abs` total on every constructed value.
        if num == i128::MIN || den == i128::MIN {
            return Err(RationalError::Overflow {
                operation: "construction",
            });
        }
        if num == 0 {
            return Ok(Rational::ZERO);
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (n, d) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd_u128(n, d);
        Ok(Rational {
            num: sign * (n / g) as i128,
            den: (d / g) as i128,
        })
    }

    /// The integer `n` as a rational.
    pub fn from_integer(n: i128) -> Result<Rational, RationalError> {
        Rational::new(n, 1)
    }

    /// Exact conversion from a finite `f64` via its IEEE-754 decomposition.
    ///
    /// Every finite double is `±m·2^(e−1075)` with `m < 2^53`; the result is
    /// that dyadic rational with no rounding whatsoever.  Values whose exact
    /// form does not fit `i128` (magnitudes beyond ~2^127, or subnormals
    /// with denominators beyond 2^126) report [`RationalError::Overflow`].
    pub fn from_f64(value: f64) -> Result<Rational, RationalError> {
        if !value.is_finite() {
            return Err(RationalError::NonFinite);
        }
        if value == 0.0 {
            return Ok(Rational::ZERO);
        }
        let bits = value.to_bits();
        let negative = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mut mantissa, exp2) = if biased == 0 {
            (frac as u128, -1074i64) // subnormal
        } else {
            ((frac | (1u64 << 52)) as u128, biased - 1075)
        };
        let mut exp2 = exp2;
        // Strip factors of two shared between mantissa and the exponent.
        while exp2 < 0 && mantissa % 2 == 0 {
            mantissa /= 2;
            exp2 += 1;
        }
        let overflow = RationalError::Overflow {
            operation: "f64 conversion",
        };
        if exp2 >= 0 {
            if exp2 > 74 {
                // mantissa < 2^53, so anything above 2^74 leaves i128.
                return Err(overflow);
            }
            let num = mantissa.checked_shl(exp2 as u32).ok_or(overflow)?;
            if num > i128::MAX as u128 {
                return Err(overflow);
            }
            let num = num as i128;
            Rational::new(if negative { -num } else { num }, 1)
        } else {
            let shift = (-exp2) as u32;
            if shift > 126 {
                return Err(overflow);
            }
            let den = 1i128 << shift;
            let num = mantissa as i128;
            Rational::new(if negative { -num } else { num }, den)
        }
    }

    /// Nearest `f64` (approximate; for reporting only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Numerator of the normalized form (carries the sign).
    pub fn numerator(self) -> i128 {
        self.num
    }

    /// Denominator of the normalized form (always positive).
    pub fn denominator(self) -> i128 {
        self.den
    }

    /// True if the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True if the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// True if the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Checked addition.
    pub fn checked_add(self, other: Rational) -> Result<Rational, RationalError> {
        let overflow = RationalError::Overflow { operation: "add" };
        // a/b + c/d = (a·(d/g) + c·(b/g)) / (b·(d/g)) with g = gcd(b, d).
        let g = gcd_u128(self.den as u128, other.den as u128) as i128;
        let db = self.den / g;
        let dd = other.den / g;
        let left = self.num.checked_mul(dd).ok_or(overflow)?;
        let right = other.num.checked_mul(db).ok_or(overflow)?;
        let num = left.checked_add(right).ok_or(overflow)?;
        let den = self.den.checked_mul(dd).ok_or(overflow)?;
        Rational::new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: Rational) -> Result<Rational, RationalError> {
        self.checked_add(-other)
    }

    /// Checked multiplication (cross-reduced before the products).
    pub fn checked_mul(self, other: Rational) -> Result<Rational, RationalError> {
        let overflow = RationalError::Overflow { operation: "mul" };
        // Reduce a/b · c/d as (a/g1)·(c/g2) / ((b/g2)·(d/g1)) with
        // g1 = gcd(|a|, d) and g2 = gcd(|c|, b), delaying overflow.
        let g1 = gcd_u128(self.num.unsigned_abs().max(1), other.den as u128) as i128;
        let g2 = gcd_u128(other.num.unsigned_abs().max(1), self.den as u128) as i128;
        let num = (self.num / g1)
            .checked_mul(other.num / g2)
            .ok_or(overflow)?;
        let den = (self.den / g2)
            .checked_mul(other.den / g1)
            .ok_or(overflow)?;
        Rational::new(num, den)
    }

    /// Checked division.
    pub fn checked_div(self, other: Rational) -> Result<Rational, RationalError> {
        if other.is_zero() {
            return Err(RationalError::DivisionByZero);
        }
        self.checked_mul(Rational {
            num: other.den * other.num.signum(),
            den: other.num.abs(),
        })
    }

    /// Exact sum of a slice (zero for an empty slice).
    pub fn sum(values: &[Rational]) -> Result<Rational, RationalError> {
        values
            .iter()
            .try_fold(Rational::ZERO, |acc, &v| acc.checked_add(v))
    }
}

impl std::ops::Neg for Rational {
    type Output = Rational;

    /// Negation (total: `i128::MIN` is rejected at construction).
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    /// Exact comparison by 256-bit cross-multiplication — never overflows.
    fn cmp(&self, other: &Rational) -> Ordering {
        let sign_cmp = self.num.signum().cmp(&other.num.signum());
        if sign_cmp != Ordering::Equal {
            return sign_cmp;
        }
        if self.num == 0 {
            return Ordering::Equal;
        }
        // Same nonzero sign: compare |a|·d' vs |a'|·d in 256 bits, flipping
        // for negatives.
        let lhs = widening_mul_u128(self.num.unsigned_abs(), other.den as u128);
        let rhs = widening_mul_u128(other.num.unsigned_abs(), self.den as u128);
        let mag = lhs.cmp(&rhs);
        if self.num < 0 {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(num: i128, den: i128) -> Rational {
        Rational::new(num, den).unwrap()
    }

    #[test]
    fn construction_normalizes() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(0, 5), Rational::ZERO);
        assert_eq!(r(6, 3).numerator(), 2);
        assert_eq!(r(6, 3).denominator(), 1);
        assert!(r(-3, 7).denominator() > 0);
        assert_eq!(Rational::new(1, 0), Err(RationalError::DivisionByZero));
        assert!(matches!(
            Rational::new(i128::MIN, 1),
            Err(RationalError::Overflow { .. })
        ));
        assert!(matches!(
            Rational::new(1, i128::MIN),
            Err(RationalError::Overflow { .. })
        ));
    }

    #[test]
    fn field_axioms_on_samples() {
        let samples = [
            r(0, 1),
            r(1, 1),
            r(-1, 3),
            r(7, 5),
            r(-22, 7),
            r(1, 1_000_000),
        ];
        for &a in &samples {
            for &b in &samples {
                // Commutativity.
                assert_eq!(a.checked_add(b).unwrap(), b.checked_add(a).unwrap());
                assert_eq!(a.checked_mul(b).unwrap(), b.checked_mul(a).unwrap());
                // Subtraction inverts addition.
                let s = a.checked_add(b).unwrap();
                assert_eq!(s.checked_sub(b).unwrap(), a);
                // Division inverts multiplication.
                if !b.is_zero() {
                    let p = a.checked_mul(b).unwrap();
                    assert_eq!(p.checked_div(b).unwrap(), a);
                }
            }
        }
    }

    #[test]
    fn arithmetic_exact_values() {
        assert_eq!(r(1, 2).checked_add(r(1, 3)).unwrap(), r(5, 6));
        assert_eq!(r(1, 2).checked_sub(r(1, 3)).unwrap(), r(1, 6));
        assert_eq!(r(2, 3).checked_mul(r(9, 4)).unwrap(), r(3, 2));
        assert_eq!(r(2, 3).checked_div(r(4, 9)).unwrap(), r(3, 2));
        assert_eq!(
            r(1, 2).checked_div(Rational::ZERO),
            Err(RationalError::DivisionByZero)
        );
    }

    #[test]
    fn cross_reduction_delays_overflow() {
        // (2^100/3)·(3/2^100) = 1 even though the naive numerator 3·2^100
        // times 3·... would overflow nothing here, use genuinely large ones:
        let big = 1i128 << 100;
        let a = r(big, 3);
        let b = r(3, big);
        assert_eq!(a.checked_mul(b).unwrap(), Rational::ONE);
        // Without cross-reduction big·3 / 3·big is fine, so also check a
        // case where only cross-reduction saves it: (big/1)·(1/big).
        assert_eq!(r(big, 1).checked_mul(r(1, big)).unwrap(), Rational::ONE);
        // And one that genuinely cannot fit: big·big.
        assert!(matches!(
            r(big, 1).checked_mul(r(big, 1)),
            Err(RationalError::Overflow { .. })
        ));
    }

    #[test]
    fn addition_overflow_promotes_to_error() {
        let huge = r(i128::MAX, 1);
        assert!(matches!(
            huge.checked_add(Rational::ONE),
            Err(RationalError::Overflow { .. })
        ));
        assert!(huge.checked_sub(Rational::ONE).is_ok());
    }

    #[test]
    fn from_f64_dyadic_exactness() {
        assert_eq!(Rational::from_f64(0.0).unwrap(), Rational::ZERO);
        assert_eq!(Rational::from_f64(-0.0).unwrap(), Rational::ZERO);
        assert_eq!(Rational::from_f64(0.5).unwrap(), r(1, 2));
        assert_eq!(Rational::from_f64(-0.75).unwrap(), r(-3, 4));
        assert_eq!(Rational::from_f64(3.0).unwrap(), r(3, 1));
        assert_eq!(Rational::from_f64(100_000.0).unwrap(), r(100_000, 1));
        // 0.1 is NOT 1/10 in binary; the exact value is
        // 3602879701896397 / 2^55.
        let tenth = Rational::from_f64(0.1).unwrap();
        assert_eq!(tenth, r(3_602_879_701_896_397, 1i128 << 55));
        assert_ne!(tenth, r(1, 10));
        // Round-tripping recovers the double exactly for all of these.
        for v in [0.1, 0.5, -1.25, 1e-10, 12345.6789, 2f64.powi(60)] {
            let q = Rational::from_f64(v).unwrap();
            assert_eq!(q.to_f64(), v, "round trip of {v}");
        }
    }

    #[test]
    fn from_f64_rejects_unrepresentable() {
        assert_eq!(Rational::from_f64(f64::NAN), Err(RationalError::NonFinite));
        assert_eq!(
            Rational::from_f64(f64::INFINITY),
            Err(RationalError::NonFinite)
        );
        assert!(matches!(
            Rational::from_f64(1e300),
            Err(RationalError::Overflow { .. })
        ));
        assert!(matches!(
            Rational::from_f64(f64::MIN_POSITIVE / 4.0),
            Err(RationalError::Overflow { .. })
        ));
        // Near the representable edge both ways.
        assert!(Rational::from_f64(2f64.powi(126)).is_ok());
        assert!(Rational::from_f64(2f64.powi(-126)).is_ok());
    }

    #[test]
    fn ordering_is_exact_under_large_cross_products() {
        // Two fractions whose cross products exceed i128: the 256-bit
        // comparison still orders them correctly.
        let a = r((1i128 << 90) + 1, 1i128 << 90);
        let b = r((1i128 << 90) + 2, 1i128 << 90);
        assert!(a < b, "{a} vs {b}");
        assert!(r(-1, 2) < r(1, 3));
        assert!(r(-1, 2) < r(-1, 3));
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
        let mut v = [r(3, 2), r(-1, 2), Rational::ZERO, r(1, 3)];
        v.sort();
        assert_eq!(v, [r(-1, 2), Rational::ZERO, r(1, 3), r(3, 2)]);
    }

    #[test]
    fn sum_folds_exactly() {
        let thirds = [r(1, 3); 3];
        assert_eq!(Rational::sum(&thirds).unwrap(), Rational::ONE);
        assert_eq!(Rational::sum(&[]).unwrap(), Rational::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(5, 1).to_string(), "5");
        assert_eq!(r(-5, 3).to_string(), "-5/3");
        assert_eq!(Rational::ZERO.to_string(), "0");
    }

    #[test]
    fn predicates_and_signs() {
        assert!(Rational::ZERO.is_zero());
        assert!(r(-1, 2).is_negative());
        assert!(r(1, 2).is_positive());
        assert_eq!(-r(-3, 4), r(3, 4));
        assert_eq!(r(-3, 4).abs(), r(3, 4));
    }

    #[test]
    fn error_display() {
        assert!(RationalError::Overflow { operation: "mul" }
            .to_string()
            .contains("mul"));
        assert!(RationalError::DivisionByZero.to_string().contains("zero"));
        assert!(RationalError::NonFinite.to_string().contains("non-finite"));
    }
}
