//! # proptest (offline shim)
//!
//! A dependency-free stand-in for the `proptest` crate, covering exactly the
//! surface this workspace's property tests use: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range strategies over the
//! primitive numeric types, `proptest::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! - **Deterministic**: cases are generated from a seed derived from the
//!   test's name, so every run explores the same inputs. There is no
//!   `PROPTEST_CASES` env handling and no persistence file.
//! - **No shrinking**: a failing case reports the generated inputs verbatim.
//!   With deterministic generation the failure is reproducible as-is.
//! - Rejections from `prop_assume!` skip the case rather than re-drawing.
//!
//! The package name is `proptest` so existing `use proptest::prelude::*`
//! test files compile unchanged; Cargo resolves it to this path crate.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Outcome carrier used by the `prop_assert*` family.
#[derive(Debug)]
pub enum TestCaseError {
    /// A property was violated; the test fails.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Construct a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-`proptest!` block configuration. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The shim's case-generation RNG (SplitMix64 — tiny and well distributed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a test's name, so each property explores a stable but
    /// distinct input stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then one splitmix scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `bound` (`bound = 0` means the full u64 range).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end().wrapping_sub(*self.start()) as u64).wrapping_add(1);
                self.start().wrapping_add(rng.below(width) as $t)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

// Signed ranges go through i128 so the width computation cannot overflow
// (e.g. `i64::MIN..i64::MAX` has width 2⁶⁴ − 1, which only fits unsigned).
macro_rules! signed_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let width =
                    ((*self.end() as i128 - *self.start() as i128) as u64).wrapping_add(1);
                (*self.start() as i128 + rng.below(width) as i128) as $t
            }
        }
    )+};
}

signed_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.uniform() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.uniform() * (self.end() - self.start())
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    // Integer literals without another constraint fall back to i32; accept it
    // so `vec(strategy, 5)` keeps working like with upstream proptest.
    impl SizeRange for i32 {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self as usize
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for Range<i32> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start as usize + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// A `Vec` strategy with the given element strategy and size (a fixed
    /// length or a range of lengths).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The upstream-compatible prelude.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// on the spot) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Reject the current inputs; the case is skipped.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The `proptest!` block: expands each contained function into a `#[test]`
/// that generates `config.cases` deterministic inputs and runs the body on
/// each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursive expander for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case {case} of {} failed: {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1_000 {
            let a = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&a));
            let b = (5u32..=9).generate(&mut rng);
            assert!((5..=9).contains(&b));
            let c = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn signed_ranges_respect_bounds() {
        let mut rng = TestRng::new(13);
        let mut saw_negative = false;
        for _ in 0..1_000 {
            let a = (-7i32..9).generate(&mut rng);
            assert!((-7..9).contains(&a));
            saw_negative |= a < 0;
            let b = (-5i64..=-2).generate(&mut rng);
            assert!((-5..=-2).contains(&b));
            let c = (i8::MIN..=i8::MAX).generate(&mut rng);
            let _ = c; // full inclusive range must not panic
        }
        assert!(saw_negative, "negative half of the range never drawn");
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let _ = (0u64..u64::MAX).generate(&mut rng);
        }
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::new(3);
        let fixed = collection::vec(0.0f64..1.0, 5).generate(&mut rng);
        assert_eq!(fixed.len(), 5);
        for _ in 0..200 {
            let ranged = collection::vec(0u64..10, 1..4).generate(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
        let nested = collection::vec(collection::vec(0.05f64..4.0, 5), 1..4).generate(&mut rng);
        assert!(nested.iter().all(|row| row.len() == 5));
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated values respect their strategies.
        #[test]
        fn macro_generates_in_range(
            x in 1u64..100,
            y in 0u32..=10,
            v in crate::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(y <= 10);
            prop_assert!((2..6).contains(&v.len()));
            prop_assume!(x != 55);
            prop_assert_ne!(x, 55);
            prop_assert_eq!(x, x);
        }
    }
}
