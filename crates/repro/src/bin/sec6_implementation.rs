//! Thin shim over the `sec6_implementation` registry entry; see
//! `crates/repro/src/exhibits/sec6_implementation.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("sec6_implementation")
}
