//! Thin shim over the `ext_faults` registry entry; see
//! `crates/repro/src/exhibits/ext_faults.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("ext_faults")
}
