//! Extension exhibit: detection under failures, stragglers, and retries.
//!
//! The paper's guarantees assume lossless delivery: every assigned copy
//! comes back and enters the comparison.  This exhibit drops that
//! assumption.  Per-assignment drop and straggler hazards shrink the
//! tuples the supervisor actually compares, so empirical detection falls
//! below the closed form `1 − (1−ε)^{1−p}`; a capped-exponential-backoff
//! retry budget buys most of it back.  Tables for the Balanced and
//! Golle–Stubblebine distributions, swept over drop rate and straggler
//! rate.
//!
//! Determinism: all latency is abstract ticks and every fault draw flows
//! through the chunked trial driver's per-chunk seeds, so the tables are
//! byte-identical for a fixed `--seed` regardless of `--threads`.

use redundancy_core::RealizedPlan;
use redundancy_repro::{banner, throughput_footer, Cli};
use redundancy_sim::{
    faulty_detection_experiment, AdversaryModel, CampaignConfig, CheatStrategy, ExperimentConfig,
    FaultModel,
};
use redundancy_stats::table::{fnum, Table};

/// `--threads` (default 0 = auto); the tables must not depend on it.
fn thread_count() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    plan: &RealizedPlan,
    campaign: &CampaignConfig,
    faults_of: impl Fn(f64) -> FaultModel,
    rates: &[f64],
    label: &str,
    config: &ExperimentConfig,
    csv_rows: &mut Vec<Vec<String>>,
    scheme: &str,
    kind: &str,
    totals: &mut (u64, u64),
) -> Table {
    let mut table = Table::new(&[
        label,
        "detection (no retry)",
        "detection (3 retries)",
        "delivered (3 retries)",
        "eff. mult",
        "unresolved",
    ]);
    table.numeric();
    for &rate in rates {
        let no_retry = FaultModel {
            max_retries: 0,
            ..faults_of(rate)
        };
        let with_retry = FaultModel {
            max_retries: 3,
            ..faults_of(rate)
        };
        let bare = faulty_detection_experiment(plan, campaign, &no_retry, config);
        let retried = faulty_detection_experiment(plan, campaign, &with_retry, config);
        totals.0 += bare.outcome.tasks + retried.outcome.tasks;
        totals.1 += bare.outcome.assignments + retried.outcome.assignments;
        let d0 = bare.overall().estimate();
        let d3 = retried.overall().estimate();
        let delivered = retried.outcome.delivery_rate().unwrap_or(0.0);
        let eff = retried.outcome.effective_multiplicity().unwrap_or(0.0);
        table.row(&[
            &fnum(rate, 2),
            &fnum(d0, 4),
            &fnum(d3, 4),
            &fnum(delivered, 4),
            &fnum(eff, 3),
            &retried.outcome.unresolved_tasks.to_string(),
        ]);
        csv_rows.push(vec![
            scheme.to_string(),
            kind.to_string(),
            fnum(rate, 2),
            fnum(d0, 6),
            fnum(d3, 6),
            fnum(delivered, 6),
            fnum(eff, 6),
            retried.outcome.unresolved_tasks.to_string(),
        ]);
    }
    table
}

fn main() {
    let cli = Cli::parse();
    banner(
        "Extension: faults",
        "Empirical detection under per-assignment drops and stragglers, with and\n\
         without supervisor retries.  N = 10,000 tasks, eps = 0.5, p = 0.1.",
    );

    let n = 10_000u64;
    let eps = 0.5;
    let p = 0.1;
    let campaigns = 12 * cli.trials_scale;
    let config = ExperimentConfig {
        campaigns,
        seed: cli.seed,
        threads: thread_count(),
        chunk_size: 4,
    };
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    let drop_rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let straggler_rates = [0.0, 0.2, 0.4, 0.6, 0.8];
    let mut csv_rows = Vec::new();
    let start = std::time::Instant::now();
    let mut totals = (0u64, 0u64);

    let schemes: Vec<(&str, RealizedPlan)> = vec![
        ("balanced", RealizedPlan::balanced(n, eps).unwrap()),
        (
            "golle-stubblebine",
            RealizedPlan::golle_stubblebine(n, eps).unwrap(),
        ),
    ];

    for (name, plan) in &schemes {
        let expect = 1.0 - (1.0 - plan.epsilon()).powf(1.0 - p);
        println!(
            "--- {name} (closed-form detection with lossless delivery: {}) ---",
            fnum(expect, 4)
        );
        let drops = sweep(
            plan,
            &campaign,
            FaultModel::with_drop_rate,
            &drop_rates,
            "drop rate",
            &config,
            &mut csv_rows,
            name,
            "drop",
            &mut totals,
        );
        print!("{}", drops.render());
        println!();
        let stragglers = sweep(
            plan,
            &campaign,
            // Mean delay 3× the 8-tick timeout: stragglers usually miss the
            // window and survive only through retries.
            |rate| FaultModel::with_stragglers(rate, 24.0),
            &straggler_rates,
            "straggler rate",
            &config,
            &mut csv_rows,
            name,
            "straggler",
            &mut totals,
        );
        print!("{}", stragglers.render());
        println!();
    }
    println!(
        "Shape: without retries detection decays roughly like the closed form with\n\
         eps scaled by the delivery rate; three retries hold it near the lossless\n\
         value until drop rates get extreme.  Both schemes degrade alike — the\n\
         hazard acts per assignment, not per scheme."
    );
    cli.maybe_write_csv(
        "scheme,hazard,rate,detection_no_retry,detection_retry3,delivered,effective_multiplicity,unresolved",
        &csv_rows,
    );
    throughput_footer("ext_faults", totals.0, totals.1, start.elapsed());
}
