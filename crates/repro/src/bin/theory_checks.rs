//! Thin shim over the `theory_checks` registry entry; see
//! `crates/repro/src/exhibits/theory_checks.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("theory_checks")
}
