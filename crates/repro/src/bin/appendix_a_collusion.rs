//! Thin shim over the `appendix_a_collusion` registry entry; see
//! `crates/repro/src/exhibits/appendix_a_collusion.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("appendix_a_collusion")
}
