//! Thin shim over the `fig4_assignment_table` registry entry; see
//! `crates/repro/src/exhibits/fig4_assignment_table.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("fig4_assignment_table")
}
