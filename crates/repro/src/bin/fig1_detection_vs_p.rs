//! Thin shim over the `fig1_detection_vs_p` registry entry; see
//! `crates/repro/src/exhibits/fig1_detection_vs_p.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("fig1_detection_vs_p")
}
