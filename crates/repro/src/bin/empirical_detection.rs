//! Thin shim over the `empirical_detection` registry entry; see
//! `crates/repro/src/exhibits/empirical_detection.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("empirical_detection")
}
