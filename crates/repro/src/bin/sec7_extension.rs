//! Thin shim over the `sec7_extension` registry entry; see
//! `crates/repro/src/exhibits/sec7_extension.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("sec7_extension")
}
