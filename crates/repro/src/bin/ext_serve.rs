//! Standalone shim for the `ext_serve` registry exhibit.

fn main() {
    redundancy_repro::exhibit_main("ext_serve")
}
