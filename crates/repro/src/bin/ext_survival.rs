//! Thin shim over the `ext_survival` registry entry; see
//! `crates/repro/src/exhibits/ext_survival.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("ext_survival")
}
