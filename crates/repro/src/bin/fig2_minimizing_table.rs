//! Thin shim over the `fig2_minimizing_table` registry entry; see
//! `crates/repro/src/exhibits/fig2_minimizing_table.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("fig2_minimizing_table")
}
