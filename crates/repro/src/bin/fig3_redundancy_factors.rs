//! Thin shim over the `fig3_redundancy_factors` registry entry; see
//! `crates/repro/src/exhibits/fig3_redundancy_factors.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("fig3_redundancy_factors")
}
