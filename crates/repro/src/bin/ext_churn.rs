//! Thin shim over the `ext_churn` registry entry; see
//! `crates/repro/src/exhibits/ext_churn.rs` for the exhibit itself.

fn main() {
    redundancy_repro::exhibit_main("ext_churn")
}
