//! Appendix A: collusion under two-phase simple redundancy.
//!
//! Monte-Carlo confirmation that the expected number of fully controlled
//! tasks is `≈ p²·N`, and that `p = 1/√N` is the cheatability threshold:
//! the table sweeps p across the critical value for two task counts.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_json::num_u64;
use redundancy_sim::two_phase::{two_phase_batch, TwoPhaseConfig};
use redundancy_stats::table::{fnum, inum, Table};
use redundancy_stats::DeterministicRng;

pub struct AppendixACollusion;

impl Exhibit for AppendixACollusion {
    fn name(&self) -> &'static str {
        "appendix_a_collusion"
    }

    fn summary(&self) -> &'static str {
        "two-phase collusion: the p^2*N law and the 1/sqrt(N) threshold"
    }

    fn paper_ref(&self) -> &'static str {
        "Appendix A"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Appendix A",
            "Two-phase simple redundancy: expected fully-controlled tasks is ~p^2*N, so an\n\
             adversary with p >= 1/sqrt(N) expects to cheat on at least one task.",
        );

        let trials = 2_000 * ctx.trials_scale;
        let mut rng = DeterministicRng::new(ctx.seed);
        let mut table = Table::new(&[
            "N",
            "p",
            "p/(1/sqrt(N))",
            "E[full control] (theory)",
            "mean (simulated)",
            "P(cheatable)",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();

        for n in [10_000u64, 1_000_000] {
            let crit = 1.0 / (n as f64).sqrt();
            for mult in [0.25, 0.5, 1.0, 2.0, 4.0] {
                let p = crit * mult;
                let cfg = TwoPhaseConfig::new(n, p);
                let out = two_phase_batch(&cfg, trials, &mut rng);
                table.row(&[
                    &inum(n),
                    &fnum(p, 5),
                    &fnum(mult, 2),
                    &fnum(cfg.expected_full_control(), 3),
                    &fnum(out.full_control.mean(), 3),
                    &fnum(out.cheatable_fraction(), 3),
                ]);
                csv_rows.push(vec![
                    n.to_string(),
                    fnum(p, 6),
                    fnum(mult, 2),
                    fnum(cfg.expected_full_control(), 6),
                    fnum(out.full_control.mean(), 6),
                    fnum(out.cheatable_fraction(), 6),
                ]);
            }
        }
        report.table(table);
        report.blank();
        report.text(
            "Shape: simulated means track p^2*N; the cheatable fraction crosses ~63%\n\
             (1 - 1/e) right at p = 1/sqrt(N), confirming the Appendix A threshold.",
        );
        report.fact("trials_per_point", num_u64(trials));
        report.set_csv(
            "n,p,p_over_critical,expected_full_control,simulated_mean,cheatable_fraction",
            csv_rows,
        );
        report
    }
}
