//! Figure 1: detection probability vs proportion controlled by adversary.
//!
//! Three curves at ε = ½: the Balanced distribution, the optimal `S₉`
//! (N = 100,000), and the optimal `S₂₆` (N = 1,000,000) — the first
//! systems whose precompute requirement stably falls below 1000 tasks.
//! Each curve plots the *effective* (minimum over k) detection probability
//! as the adversary's proportion p grows; the paper's shape: Balanced
//! decays slowly (`1 − ½^{1−p}`), both LP optima collapse steeply.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::{AssignmentMinimizing, Balanced};
use redundancy_json::Json;
use redundancy_stats::parallel_sweep;
use redundancy_stats::table::{fnum, Table};

pub struct Fig1DetectionVsP;

impl Exhibit for Fig1DetectionVsP {
    fn name(&self) -> &'static str {
        "fig1_detection_vs_p"
    }

    fn summary(&self) -> &'static str {
        "detection vs adversary proportion: Balanced vs the S_9/S_26 LP optima"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 1"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Figure 1",
            "Detection probabilities for three distributions (eps = 1/2).\n\
             Columns: min_k P(k,p) for Balanced, S_9 at N = 100,000 and S_26 at N = 1,000,000\n\
             (the first finite-dimensional solutions stably requiring < 1000 precomputed tasks).",
        );

        let eps = 0.5;
        let balanced = Balanced::new(100_000, eps).expect("valid parameters");
        let s9 = AssignmentMinimizing::solve(100_000, eps, 9).expect("S_9 solves");
        let s26 = AssignmentMinimizing::solve(1_000_000, eps, 26).expect("S_26 solves");
        assert!(
            s9.precompute_required() < 1000.0 && s26.precompute_required() < 1000.0,
            "Figure 1 selection criterion"
        );
        let s9_prof = s9.verified_profile();
        let s26_prof = s26.verified_profile();

        let mut table = Table::new(&["p", "balanced", "S_9 (N=1e5)", "S_26 (N=1e6)"]);
        table.numeric();
        let mut csv_rows = Vec::new();
        // Evaluate the p-grid on the shared sweep pool; results come back in
        // grid order, so the printed table is byte-identical to the serial loop.
        let grid: Vec<f64> = (0..=20).map(|step| step as f64 * 0.025).collect(); // 0 .. 0.5
        let points = parallel_sweep(ctx.threads, &grid, |_i, &p| {
            let bal = balanced.p_nonasymptotic(1, p).expect("valid p");
            let v9 = s9_prof.effective_detection(p).expect("valid p");
            let v26 = s26_prof.effective_detection(p).expect("valid p");
            (p, bal, v9, v26)
        });
        for (p, bal, v9, v26) in points {
            table.row(&[&fnum(p, 3), &fnum(bal, 4), &fnum(v9, 4), &fnum(v26, 4)]);
            csv_rows.push(vec![fnum(p, 3), fnum(bal, 6), fnum(v9, 6), fnum(v26, 6)]);
        }
        report.table(table);

        report.blank();
        report.text(format!(
            "S_9 precompute: {:.0} tasks; S_26 precompute: {:.0} tasks.",
            s9.precompute_required(),
            s26.precompute_required()
        ));
        report.text(
            "Shape check: Balanced stays above both LP optima for p >= 0.05 \
             (the paper's argument for robustness to collusion).",
        );
        report.fact("eps", Json::Num(eps));
        report.fact("s9_precompute", Json::Num(s9.precompute_required()));
        report.fact("s26_precompute", Json::Num(s26.precompute_required()));
        report.set_csv("p,balanced,s9_n1e5,s26_n1e6", csv_rows);
        report
    }
}
