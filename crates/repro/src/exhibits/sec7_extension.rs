//! Section 7: the extended Balanced distribution with minimum
//! multiplicities.
//!
//! Redundancy factors at ε = ½ for minimum multiplicities 1–5, plus the
//! worked comparison: at N = 100,000, guaranteeing ε = ½ on top of
//! 2-fold redundancy costs 25,900 extra assignments (~13 % more than
//! simple redundancy, which guarantees nothing).

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::{ExtendedBalanced, Scheme};
use redundancy_json::Json;
use redundancy_stats::table::{fnum, inum, Table};

pub struct Sec7Extension;

impl Exhibit for Sec7Extension {
    fn name(&self) -> &'static str {
        "sec7_extension"
    }

    fn summary(&self) -> &'static str {
        "extended Balanced: factors for guaranteed minimum multiplicities"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 7"
    }

    fn run(&self, _ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Section 7",
            "Extended Balanced distribution: redundancy factors for guaranteed minimum\n\
             multiplicities (eps = 0.5), and the cost over plain simple redundancy.",
        );

        let n = 100_000u64;
        let eps = 0.5;
        let mut table = Table::new(&[
            "Min mult.",
            "Redund. factor",
            "Assignments (N=1e5)",
            "vs simple (2N)",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();
        for m in 1..=5usize {
            let ext = ExtendedBalanced::new(n, eps, m).expect("valid parameters");
            let factor = ext.redundancy_factor_exact();
            let total = ext.total_assignments_exact();
            let delta = total - 2.0 * n as f64;
            table.row(&[
                &m.to_string(),
                &fnum(factor, 4),
                &inum(total.round() as u64),
                &format!(
                    "{}{}",
                    if delta >= 0.0 { "+" } else { "-" },
                    inum(delta.abs().round() as u64)
                ),
            ]);
            csv_rows.push(vec![
                m.to_string(),
                fnum(factor, 6),
                fnum(total, 1),
                fnum(delta, 1),
            ]);
            report.fact(format!("factor_min_mult_{m}"), Json::Num(factor));
            // Sanity: guarantee holds at and above the minimum multiplicity.
            debug_assert!(ext.guaranteed_detection() == Some(eps));
        }
        report.table(table);
        report.blank();
        report.text(
            "Paper values (eps = 0.5): factors 2.259, 3.192, 4.152, 5.126 for min mult 2-5;\n\
             min mult 2 at N = 100,000 adds 25,900 assignments (~13%) over simple redundancy\n\
             while guaranteeing eps = 0.5, which simple redundancy cannot guarantee at all.",
        );
        report.set_csv(
            "min_multiplicity,redundancy_factor,assignments,delta_vs_simple",
            csv_rows,
        );
        report
    }
}
