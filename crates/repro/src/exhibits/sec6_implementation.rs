//! Section 6 worked examples: realizing the Balanced distribution.
//!
//! Reproduces both numeric examples:
//! * the "extreme" case N = 10⁷, ε = 0.99 → i_f = 20, 12-task tail (240
//!   assignments of ~46.5 M), 57 ringers;
//! * the "typical" case N = 10⁶, ε = 0.75 → i_f = 11, 5-task tail, 2
//!   ringers.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::RealizedPlan;
use redundancy_json::num_u64;
use redundancy_stats::table::{fnum, inum, Table};

pub struct Sec6Implementation;

impl Exhibit for Sec6Implementation {
    fn name(&self) -> &'static str {
        "sec6_implementation"
    }

    fn summary(&self) -> &'static str {
        "worked tail/ringer examples for the two Section 6 cases"
    }

    fn paper_ref(&self) -> &'static str {
        "Section 6"
    }

    fn run(&self, _ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Section 6",
            "Implementing the strategy: floors, i_f, tail partition, and ringers for the\n\
             paper's two worked examples.",
        );

        let cases = [
            (10_000_000u64, 0.99, "extreme"),
            (1_000_000, 0.75, "typical"),
        ];
        let mut table = Table::new(&[
            "Case",
            "N",
            "eps",
            "i_f",
            "Tail tasks",
            "Tail assignments",
            "Ringers",
            "Total assignments",
            "Min P_k",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();
        for (n, eps, label) in cases {
            let plan = RealizedPlan::balanced(n, eps).expect("plan realizes");
            let i_f = plan.tail_multiplicity().unwrap_or(0);
            let min_p = plan.effective_detection(0.0).expect("valid p");
            table.row(&[
                label,
                &inum(n),
                &fnum(eps, 2),
                &i_f.to_string(),
                &inum(plan.tail_tasks()),
                &inum(plan.tail_tasks() * i_f as u64),
                &inum(plan.ringer_tasks()),
                &inum(plan.total_assignments()),
                &fnum(min_p, 4),
            ]);
            csv_rows.push(vec![
                label.into(),
                n.to_string(),
                eps.to_string(),
                i_f.to_string(),
                plan.tail_tasks().to_string(),
                plan.ringer_tasks().to_string(),
                plan.total_assignments().to_string(),
                fnum(min_p, 6),
            ]);
            report.fact(format!("{label}_i_f"), num_u64(i_f as u64));
            report.fact(format!("{label}_ringers"), num_u64(plan.ringer_tasks()));
        }
        report.table(table);
        report.blank();
        report.text(
            "Paper values: extreme case i_f = 20, tail 12 (240 assignments), 57 ringers;\n\
             typical case i_f = 11, tail 5, 2 ringers. Min P_k >= eps in both cases.",
        );
        report.set_csv(
            "case,n,eps,i_f,tail_tasks,ringers,total_assignments,min_p",
            csv_rows,
        );
        report
    }
}
