//! Extension exhibit: the live supervisor vs the batched kernel.
//!
//! Everything the paper measures is a *batch* computation: draw the whole
//! campaign, tally, report.  The `serve` subsystem runs the same scheme as
//! a long-lived supervisor — a sharded assignment store deals copies on
//! demand, tracks them in flight, and judges returns incrementally — so
//! the natural question is whether serving changes the statistics.
//!
//! It must not, and this exhibit's `passed` flag asserts exactly that: a
//! *drained* serve session (every copy requested and returned) is
//! **bit-identical** to `run_campaign` on the same seed — same outcome
//! counters, across the full Monte-Carlo driver — at 1, 2, and 4 store
//! shards.  Sharding, dispatch order, and incremental judging are pure
//! bookkeeping; the Balanced multiplicity mix (hence `P_k = ε`) is
//! preserved draw for draw.
//!
//! The report also prints a scripted wire-protocol session (the exact
//! frames a client exchanges with `redundancy serve --stdio`) so the
//! transcript in EXPERIMENTS.md can never drift from the code.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::RealizedPlan;
use redundancy_json::num_u64;
use redundancy_sim::experiment::{detection_experiment_with, DetectionEstimate};
use redundancy_sim::serve::{
    decode_frames, script_frames, serve_connection, ConcurrentStore, ServeConfig, ServeSession,
    SessionEnd,
};
use redundancy_sim::task::expand_plan;
use redundancy_sim::{
    serve_experiment, AdversaryModel, CampaignConfig, CheatStrategy, ExperimentConfig,
};
use redundancy_stats::table::{fnum, Table};
use redundancy_stats::{parallel_sweep, sweep_thread_split};

pub struct ExtServe;

/// Realized redundancy factor of an estimate (issued assignments per task).
fn realized_factor(est: &DetectionEstimate) -> f64 {
    if est.outcome.tasks == 0 {
        0.0
    } else {
        est.outcome.assignments as f64 / est.outcome.tasks as f64
    }
}

impl Exhibit for ExtServe {
    fn name(&self) -> &'static str {
        "ext_serve"
    }

    fn summary(&self) -> &'static str {
        "drained live-serve sessions are bit-identical to the batched kernel"
    }

    fn paper_ref(&self) -> &'static str {
        "(ours)"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Extension: live serving",
            "The live supervisor (`redundancy serve`): a sharded assignment store\n\
             deals task copies on demand in the batched kernel's RNG order, tracks\n\
             them in flight, and judges returns incrementally.  Draining a session\n\
             must reproduce the batched kernel bit for bit at every shard count.\n\
             N = 4,000 tasks, eps = 0.5, p = 0.2.",
        );

        let n = 4_000u64;
        let eps = 0.5;
        let p = 0.2;
        let campaigns = 8 * ctx.trials_scale;
        let plan = RealizedPlan::balanced(n, eps).unwrap();
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
        );

        // The oracle: the batched-kernel experiment, then the same seeds
        // drained through the serve store at 1, 2, and 4 shards.
        let shard_counts = [1usize, 2, 4];
        let (outer, inner) = sweep_thread_split(ctx.threads, shard_counts.len());
        let config = ExperimentConfig::new(campaigns, ctx.seed).with_threads(inner);
        let baseline = detection_experiment_with(&plan, &campaign, &config);
        let results: Vec<DetectionEstimate> =
            parallel_sweep(outer, &shard_counts, |_i, &shards| {
                serve_experiment(&plan, &campaign, &ServeConfig::new(shards), &config)
            });
        let all_identical = results.iter().all(|est| est.outcome == baseline.outcome);
        report.passed = all_identical;

        let closed_form = 1.0 - (1.0 - eps).powf(1.0 - p);
        report.text(format!(
            "Closed-form detection: {}.  Every drained serve session matches the\n\
             batched kernel bitwise: {}.",
            fnum(closed_form, 4),
            if all_identical { "yes" } else { "NO" }
        ));
        report.blank();

        report.text("--- shard sweep (same seeds, store resharded) ---");
        let mut table = Table::new(&[
            "shards",
            "detection",
            "realized factor",
            "wrong accepted",
            "bit-identical",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();
        let mut totals = (0u64, 0u64);
        for (&shards, est) in shard_counts.iter().zip(&results) {
            totals.0 += est.outcome.tasks;
            totals.1 += est.outcome.assignments;
            let identical = est.outcome == baseline.outcome;
            table.row(&[
                &shards.to_string(),
                &fnum(est.overall().estimate(), 4),
                &fnum(realized_factor(est), 3),
                &est.outcome.wrong_accepted.to_string(),
                if identical { "yes" } else { "NO" },
            ]);
            csv_rows.push(vec![
                shards.to_string(),
                fnum(est.overall().estimate(), 6),
                fnum(realized_factor(est), 6),
                est.outcome.wrong_accepted.to_string(),
                u64::from(identical).to_string(),
            ]);
        }
        report.table(table);
        report.blank();

        // A scripted wire session over a tiny fixed workload: the exact
        // frames `redundancy serve --stdio` exchanges, pinned by the golden
        // snapshot so documentation can never drift from the protocol.
        report.text("--- scripted protocol session (3 tasks x 2 copies) ---");
        let tiny = expand_plan(&RealizedPlan::k_fold(3, 2, eps).unwrap());
        let mut session = ServeSession::new(&tiny, &campaign, &ServeConfig::new(2), ctx.seed)
            .expect("tiny workload is valid");
        let script = [
            "request-work",
            "return-result 0 0",
            "request-work",
            "return-result 0 1",
            "request-work",
            "request-work",
            "return-result 1 1",
            "return-result 1 0",
            "request-work",
            "return-result 2 0",
            "request-work",
            "return-result 2 1",
            "request-work",
            "shutdown",
        ];
        let mut input: &[u8] = &script_frames(&script)[..];
        let mut output = Vec::new();
        let end = serve_connection(&mut input, &mut output, |req| session.handle(req))
            .expect("in-memory transport cannot fail");
        let replies = decode_frames(&output);
        let mut transcript = Table::new(&["client sends", "supervisor replies"]);
        for (req, reply) in script.iter().zip(&replies) {
            transcript.row(&[req, reply.as_str()]);
        }
        report.table(transcript);
        let session_ok = session.store.is_drained() && end == SessionEnd::Shutdown;
        // The per-shard-stream store carries its own determinism contract:
        // an interleaved drain must match a shard-by-shard drain bitwise —
        // merged outcome, per-shard final RNG states, stats.  Folded into
        // `passed` with no printed output so the golden snapshot bytes
        // stay fixed.
        let sharded_ok = {
            let specs = expand_plan(&plan);
            let served = ConcurrentStore::new(&specs, &campaign, &ServeConfig::new(2), ctx.seed)
                .expect("balanced workload is valid");
            served.drain();
            let oracle = ConcurrentStore::new(&specs, &campaign, &ServeConfig::new(2), ctx.seed)
                .expect("balanced workload is valid");
            oracle.drain_shard_by_shard();
            served.merged_outcome() == oracle.merged_outcome()
                && served.final_rngs() == oracle.final_rngs()
                && served.stats() == oracle.stats()
        };
        // The crash-recovery contract, also folded into `passed` with no
        // printed output: journal a partially drained session, tear the
        // log mid-append as a crash would, replay the verified prefix,
        // finish the drain, and require bitwise equality with a session
        // that never crashed.
        let recovery_ok = {
            use redundancy_sim::serve::{
                drain_equivalence, replay_with, workload_fingerprint, DrainState, Issue,
                JournalWriter, JournaledStore, Record, ReplayOptions, SessionHeader, SharedBuf,
                StoreEnum, StreamMode, SyncPolicy, WorkStore,
            };
            // The same withholding drive on both sides: hold every third
            // copy in flight so the crash leaves real recovery work
            // (timeouts fire on the default 8-tick clock).
            fn partial_drive<S: WorkStore>(store: &mut S) {
                let mut held = Vec::new();
                for step in 0..240usize {
                    match store.request_work() {
                        Issue::Work(a) if step % 3 == 0 => held.push((a.task, a.copy)),
                        Issue::Work(a) => {
                            let _ = store.return_result(a.task, a.copy);
                        }
                        Issue::Idle | Issue::Drained => {
                            if let Some((task, copy)) = held.pop() {
                                let _ = store.return_result(task, copy);
                            }
                        }
                    }
                }
            }
            let specs = expand_plan(&plan);
            let serve = ServeConfig::new(2);
            let fresh_store = || {
                StoreEnum::new(&specs, &campaign, &serve, ctx.seed, StreamMode::Single)
                    .expect("balanced workload is valid")
            };
            let buf = SharedBuf::new();
            let mut writer = JournalWriter::new(buf.clone(), SyncPolicy::Always);
            writer
                .append(&Record::Header(SessionHeader {
                    seed: ctx.seed,
                    shards: 2,
                    mode: StreamMode::Single,
                    timeout: serve.faults.timeout,
                    max_retries: serve.faults.max_retries,
                    fingerprint: workload_fingerprint(&specs, &campaign),
                    total_tasks: specs.len() as u64,
                }))
                .expect("in-memory journal cannot fail");
            let mut live = JournaledStore::new(fresh_store(), Some(writer));
            partial_drive(&mut live);
            let (_crashed, _) = live.finish().expect("in-memory journal cannot fail");
            // The crash: the log ends in a half-written record.
            let mut torn = buf.snapshot();
            torn.extend_from_slice(&[0x13, 0x37, 0x00]);
            let opts = ReplayOptions {
                allow_torn_tail: true,
            };
            let replayed = replay_with(&torn, &specs, &campaign, opts)
                .expect("the verified prefix must replay");
            let mut recovered = replayed.store;
            let reverted = recovered.reset_in_flight();
            recovered.drain();
            // The session that never crashed, resumed the same way.
            let mut oracle = fresh_store();
            partial_drive(&mut oracle);
            let oracle_reverted = oracle.reset_in_flight();
            oracle.drain();
            replayed.torn_tail
                && reverted == oracle_reverted
                && drain_equivalence(&DrainState::of(&recovered), &DrainState::of(&oracle)).is_ok()
        };
        report.passed = all_identical && session_ok && sharded_ok && recovery_ok;
        report.text(format!(
            "Session end: {end:?}; store drained: {}.",
            if session_ok { "yes" } else { "NO" }
        ));
        report.blank();
        report.text(
            "Shape: the serve store activates tasks lazily in task-id order and\n\
             consumes the RNG exactly as the batched kernel does, so the drawn\n\
             multiplicity multiset — and with it P_k = eps — is preserved no matter\n\
             how requests interleave or how the store is sharded.  Timeouts re-queue\n\
             copies rather than redraw them, so the mix survives faults too.",
        );
        report.fact("campaigns_per_point", num_u64(campaigns));
        report.fact("shard_counts", num_u64(shard_counts.len() as u64));
        report.fact("protocol_frames", num_u64(script.len() as u64));
        report.set_csv(
            "shards,detection,realized_factor,wrong_accepted,bit_identical",
            csv_rows,
        );
        report.counters(totals.0, totals.1);
        report
    }
}
