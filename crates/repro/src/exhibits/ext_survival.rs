//! Extension exhibit: adversary survival under a reactive supervisor.
//!
//! Quantifies the paper's Section 1 caveat — a determined adversary *will*
//! eventually cheat successfully, but she is expected to be caught (and
//! banned) after only `(1−P_eff)/P_eff` free cheats, where `P_eff` is the
//! scheme's effective per-attempt detection.  Simulated careers against
//! the geometric closed form, plus the Section 5 waste metric per scheme.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::{wasted_assignments, RealizedPlan};
use redundancy_json::num_u64;
use redundancy_sim::engine::CampaignConfig;
use redundancy_sim::survival::{expected_free_cheats, survival_experiment_with};
use redundancy_sim::{AdversaryModel, CheatStrategy};
use redundancy_stats::table::{fnum, Table};
use redundancy_stats::{parallel_sweep, sweep_thread_split};

pub struct ExtSurvival;

impl Exhibit for ExtSurvival {
    fn name(&self) -> &'static str {
        "ext_survival"
    }

    fn summary(&self) -> &'static str {
        "free cheats before first detection vs the geometric law"
    }

    fn paper_ref(&self) -> &'static str {
        "(ours)"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Extension: survival",
            "Free cheats before first detection (geometric law vs simulated careers), and\n\
             the Section 5 waste metric. N = 20,000 tasks per campaign.",
        );

        let n = 20_000u64;
        let careers = 800 * ctx.trials_scale;
        let mut table = Table::new(&[
            "scheme",
            "eps",
            "p",
            "P_eff",
            "E[free cheats] (theory)",
            "mean (simulated)",
            "never caught",
            "wasted assignments",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();

        let scenarios: Vec<(&str, RealizedPlan, f64)> = vec![
            ("balanced", RealizedPlan::balanced(n, 0.5).unwrap(), 0.1),
            ("balanced", RealizedPlan::balanced(n, 0.75).unwrap(), 0.1),
            (
                "golle-stubblebine",
                RealizedPlan::golle_stubblebine(n, 0.5).unwrap(),
                0.1,
            ),
            ("simple", RealizedPlan::k_fold(n, 2, 0.5).unwrap(), 0.1),
        ];

        // Scenarios run concurrently on the sweep pool; each gets its share of
        // the thread budget for its own career runner.  Seeds depend only on
        // the scenario index, so the table is byte-identical to the serial loop.
        let (outer, inner) = sweep_thread_split(ctx.threads, scenarios.len());
        let outcomes = parallel_sweep(outer, &scenarios, |i, (name, plan, p)| {
            let cfg = CampaignConfig::new(
                AdversaryModel::AssignmentFraction { p: *p },
                if *name == "simple" {
                    CheatStrategy::ExactTuples { k: 2 }
                } else {
                    CheatStrategy::AtLeast { min_copies: 1 }
                },
            );
            survival_experiment_with(plan, &cfg, careers, ctx.seed + i as u64, inner)
        });

        for ((name, plan, p), out) in scenarios.iter().zip(&outcomes) {
            let p_eff = plan.effective_detection(*p).unwrap();
            let theory = expected_free_cheats(p_eff);
            let (_, waste) = wasted_assignments(&plan.detection_profile()).unwrap();
            let theory_str = if theory.is_finite() {
                fnum(theory, 2)
            } else {
                "inf".into()
            };
            table.row(&[
                name,
                &fnum(plan.epsilon(), 2),
                &fnum(*p, 2),
                &fnum(p_eff, 3),
                &theory_str,
                &fnum(out.free_cheats.mean(), 2),
                &out.never_caught.to_string(),
                &fnum(waste, 0),
            ]);
            csv_rows.push(vec![
                name.to_string(),
                fnum(plan.epsilon(), 2),
                fnum(*p, 2),
                fnum(p_eff, 6),
                theory_str,
                fnum(out.free_cheats.mean(), 4),
                out.never_caught.to_string(),
                fnum(waste, 1),
            ]);
        }
        report.table(table);
        report.blank();
        report.text(
            "Shape: Balanced careers end after ~(1-P)/P free cheats; raising eps shortens\n\
             them; simple redundancy's pair-colluders are NEVER caught (infinite careers,\n\
             and its entire second copy of every task is wasted against collusion).",
        );
        report.fact("careers_per_scenario", num_u64(careers));
        report.set_csv(
            "scheme,eps,p,p_eff,theory_free_cheats,simulated_mean,never_caught,wasted_assignments",
            csv_rows,
        );
        report
    }
}
