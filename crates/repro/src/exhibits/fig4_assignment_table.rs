//! Figure 4: per-multiplicity task assignments for Balanced,
//! Golle–Stubblebine, and simple redundancy (N = 1,000,000, ε = 0.75).
//!
//! The realized plans include the Section 6 tail partitions and ringers
//! ("the final two non-zero entries … represent the tail modifications
//! with ringers").  Shape check: the Balanced distribution saves more than
//! 50,000 assignments over both alternatives.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::{PartitionKind, RealizedPlan};
use redundancy_json::num_u64;
use redundancy_stats::table::{fnum, inum, Table};

pub struct Fig4AssignmentTable;

fn column(plan: &RealizedPlan, multiplicity: usize) -> u64 {
    plan.partitions()
        .iter()
        .filter(|p| p.multiplicity == multiplicity)
        .map(|p| p.tasks)
        .sum()
}

impl Exhibit for Fig4AssignmentTable {
    fn name(&self) -> &'static str {
        "fig4_assignment_table"
    }

    fn summary(&self) -> &'static str {
        "per-multiplicity assignments, tail partitions and ringers included"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 4"
    }

    fn run(&self, _ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Figure 4",
            "Task assignments by multiplicity for Balanced, Golle-Stubblebine, and simple\n\
             redundancy (N = 1,000,000, eps = 0.75). Tail partitions and ringers included.",
        );

        let n = 1_000_000u64;
        let eps = 0.75;
        let balanced = RealizedPlan::balanced(n, eps).expect("plan realizes");
        let gs = RealizedPlan::golle_stubblebine(n, eps).expect("plan realizes");
        let simple = RealizedPlan::k_fold(n, 2, eps).expect("plan realizes");

        let max_dim = balanced
            .partitions()
            .iter()
            .chain(gs.partitions())
            .map(|p| p.multiplicity)
            .max()
            .unwrap_or(2);

        let mut table = Table::new(&["Mult.", "Balanced", "Golle-Stubblebine", "Simple"]);
        table.numeric();
        let mut csv_rows = Vec::new();
        for i in 1..=max_dim {
            let b = column(&balanced, i);
            let g = column(&gs, i);
            let s = column(&simple, i);
            if b == 0 && g == 0 && s == 0 {
                continue;
            }
            table.row(&[&i.to_string(), &inum(b), &inum(g), &inum(s)]);
            csv_rows.push(vec![
                i.to_string(),
                b.to_string(),
                g.to_string(),
                s.to_string(),
            ]);
        }
        table.row(&["", "", "", ""]);
        table.row(&[
            "Tasks",
            &inum(balanced.n_tasks() + balanced.ringer_tasks()),
            &inum(gs.n_tasks() + gs.ringer_tasks()),
            &inum(simple.n_tasks()),
        ]);
        table.row(&[
            "Assignments",
            &inum(balanced.total_assignments()),
            &inum(gs.total_assignments()),
            &inum(simple.total_assignments()),
        ]);
        table.row(&[
            "Redund. factor",
            &fnum(balanced.redundancy_factor(), 4),
            &fnum(gs.redundancy_factor(), 4),
            &fnum(simple.redundancy_factor(), 4),
        ]);
        report.table(table);

        let bal_total = balanced.total_assignments();
        let savings_gs = gs.total_assignments() as i64 - bal_total as i64;
        let savings_simple = simple.total_assignments() as i64 - bal_total as i64;
        report.blank();
        report.text(format!(
            "Balanced tail: {} tasks at multiplicity {}; ringers: {} at multiplicity {}.",
            balanced.tail_tasks(),
            balanced.tail_multiplicity().unwrap_or(0),
            balanced.ringer_tasks(),
            balanced.tail_multiplicity().unwrap_or(0) + 1,
        ));
        report.text(format!(
            "Savings over GS: {} assignments; over simple redundancy: {} (paper: > 50,000 over both).",
            inum(savings_gs.max(0) as u64),
            inum(savings_simple.max(0) as u64)
        ));
        for p in balanced.partitions() {
            if p.kind == PartitionKind::Ringer {
                report.text(format!(
                    "(ringer partition: {} precomputed tasks x multiplicity {})",
                    p.tasks, p.multiplicity
                ));
            }
        }
        report.fact("balanced_assignments", num_u64(bal_total));
        report.fact("savings_over_gs", num_u64(savings_gs.max(0) as u64));
        report.fact("savings_over_simple", num_u64(savings_simple.max(0) as u64));
        report.set_csv("multiplicity,balanced,golle_stubblebine,simple", csv_rows);
        report
    }
}
