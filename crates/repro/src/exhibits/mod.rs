//! The exhibit implementations behind the registry.
//!
//! One module per paper table/figure; each exposes a stateless unit struct
//! implementing [`crate::Exhibit`].  Adding a workload means adding a
//! module here and one line to [`REGISTRY`] — no new binary, no new arg
//! parsing, no new emission scaffolding.

mod appendix_a_collusion;
mod empirical_detection;
mod ext_churn;
mod ext_faults;
mod ext_serve;
mod ext_survival;
mod fig1_detection_vs_p;
mod fig2_minimizing_table;
mod fig3_redundancy_factors;
mod fig4_assignment_table;
mod sec6_implementation;
mod sec7_extension;
mod theory_checks;

use crate::Exhibit;

/// Every exhibit, in paper order (figures, sections, appendix, then the
/// extensions beyond the paper).  Order is what `--list` and `--all` use.
pub(crate) static REGISTRY: &[&dyn Exhibit] = &[
    &fig1_detection_vs_p::Fig1DetectionVsP,
    &fig2_minimizing_table::Fig2MinimizingTable,
    &fig3_redundancy_factors::Fig3RedundancyFactors,
    &fig4_assignment_table::Fig4AssignmentTable,
    &sec6_implementation::Sec6Implementation,
    &sec7_extension::Sec7Extension,
    &theory_checks::TheoryChecks,
    &appendix_a_collusion::AppendixACollusion,
    &empirical_detection::EmpiricalDetection,
    &ext_survival::ExtSurvival,
    &ext_faults::ExtFaults,
    &ext_churn::ExtChurn,
    &ext_serve::ExtServe,
];
