//! Figure 3: redundancy factors vs detection threshold ε.
//!
//! Four curves: the Balanced distribution `ln(1/(1−ε))/ε`, the
//! Golle–Stubblebine distribution `1/√(1−ε)`, simple redundancy (constant
//! 2), and the Proposition 1 theoretical minimum `2/(2−ε)`.  Shape checks:
//! Balanced below GS on all of (0,1); Balanced crosses 2 near ε ≈ 0.797;
//! GS crosses 2 at exactly ε = 0.75.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::{bounds, Balanced, GolleStubblebine};
use redundancy_json::Json;
use redundancy_stats::parallel_sweep;
use redundancy_stats::table::{fnum, Table};

pub struct Fig3RedundancyFactors;

impl Exhibit for Fig3RedundancyFactors {
    fn name(&self) -> &'static str {
        "fig3_redundancy_factors"
    }

    fn summary(&self) -> &'static str {
        "redundancy factor vs eps for Balanced, GS, simple, and the bound"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 3"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Figure 3",
            "Redundancy factors for the Balanced and Golle-Stubblebine distributions,\n\
             with simple redundancy and the theoretical lower bound (asymptotic case).",
        );

        let mut table = Table::new(&[
            "eps",
            "balanced",
            "golle-stubblebine",
            "simple",
            "lower bound",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();
        // ε-grid on the shared sweep pool; ordered results keep the table
        // byte-identical to the serial loop.
        let grid: Vec<f64> = (1..20).map(|i| i as f64 * 0.05).collect();
        let points = parallel_sweep(ctx.threads, &grid, |_i, &eps| {
            let bal = Balanced::factor_for_threshold(eps).expect("valid eps");
            let gs = GolleStubblebine::factor_for_threshold(eps).expect("valid eps");
            let bound = bounds::lower_bound_factor(eps).expect("valid eps");
            (eps, bal, gs, bound)
        });
        for (eps, bal, gs, bound) in points {
            table.row(&[
                &fnum(eps, 2),
                &fnum(bal, 4),
                &fnum(gs, 4),
                "2.0000",
                &fnum(bound, 4),
            ]);
            csv_rows.push(vec![
                fnum(eps, 2),
                fnum(bal, 6),
                fnum(gs, 6),
                "2.0".into(),
                fnum(bound, 6),
            ]);
        }
        report.table(table);

        report.blank();
        report.text(format!(
            "Crossovers: GS = simple at eps = 0.75 exactly; Balanced = simple at eps = {:.4}.",
            Balanced::break_even_with_simple()
        ));
        report.text("Balanced < GS on all of (0,1); every curve > lower bound 2/(2-eps).");
        report.fact(
            "balanced_break_even",
            Json::Num(Balanced::break_even_with_simple()),
        );
        report.set_csv(
            "eps,balanced,golle_stubblebine,simple,lower_bound",
            csv_rows,
        );
        report
    }
}
