//! Extension exhibit: detection and redundancy drift under worker churn.
//!
//! The paper's guarantee `P_k = 1 − (1−ε)^{1−p}` assumes a static worker
//! pool.  This exhibit drops that assumption: hosts enter, leave, and fail
//! mid-campaign under the discrete-event churn engine, copies are
//! reassigned when their holder departs, and periodic census checkpoints
//! rerun the batched kernel over the *degraded* live multiset.  As the
//! multiplicity distribution drifts from the ideal Balanced mix, achieved
//! detection falls below the closed form while realized redundancy (issued
//! assignments per task) inflates past the planned factor.
//!
//! The zero-churn grid point doubles as a self-check: the engine must
//! reproduce the churn-free experiment *bit for bit* (same counters from
//! the same seeds), and the report's `passed` flag asserts exactly that.
//!
//! Determinism: every draw flows through the chunked trial driver's
//! per-chunk seeds and the event queue breaks ties by explicit
//! `(tick, seq)`, so the tables are byte-identical for a fixed `--seed`
//! regardless of `--threads`.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::RealizedPlan;
use redundancy_json::num_u64;
use redundancy_sim::experiment::detection_experiment_with;
use redundancy_sim::{
    churn_experiment, AdversaryModel, CampaignConfig, CheatStrategy, ChurnEstimate, ChurnModel,
    ExperimentConfig,
};
use redundancy_stats::table::{fnum, Table};
use redundancy_stats::{parallel_sweep, sweep_thread_split};

pub struct ExtChurn;

/// Planned redundancy factor of the scheme (assignments per task with a
/// full, static pool).
fn planned_factor(est: &ChurnEstimate) -> f64 {
    let c = &est.outcome.campaign;
    if c.tasks == 0 {
        0.0
    } else {
        c.assignments as f64 / c.tasks as f64
    }
}

impl Exhibit for ExtChurn {
    fn name(&self) -> &'static str {
        "ext_churn"
    }

    fn summary(&self) -> &'static str {
        "detection and realized redundancy drift under worker churn"
    }

    fn paper_ref(&self) -> &'static str {
        "(ours)"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Extension: churn",
            "Detection and realized redundancy under a dynamic worker population:\n\
             hosts arrive, depart, and fail mid-campaign; departures reassign their\n\
             copies, failures lose them.  N = 4,000 tasks, eps = 0.5, p = 0.2,\n\
             400 initial workers, horizon 2,000 ticks, census every 500.",
        );

        let n = 4_000u64;
        let eps = 0.5;
        let p = 0.2;
        let campaigns = 8 * ctx.trials_scale;
        let plan = RealizedPlan::balanced(n, eps).unwrap();
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
        );

        // Shared population geometry for every grid point.
        let geometry = ChurnModel {
            enter_rate: 0.6,
            initial_workers: 400,
            horizon: 2_000,
            census_interval: 500,
            ..ChurnModel::none()
        };
        let leave_rates = [0.0, 0.001, 0.002, 0.004, 0.008];

        // Grid: the leave-rate sweep (fail-free; row 0 is the fully static
        // pool and must match the churn-free kernel bitwise), plus one
        // mixed reference point whose census series is printed in full.
        let mut points: Vec<ChurnModel> = leave_rates
            .iter()
            .map(|&leave| ChurnModel {
                // The static row keeps arrivals off too, so the engine
                // takes the zero-churn delegation path.
                enter_rate: if leave == 0.0 {
                    0.0
                } else {
                    geometry.enter_rate
                },
                leave_rate: leave,
                ..geometry
            })
            .collect();
        let reference = ChurnModel {
            leave_rate: 0.002,
            fail_rate: 0.001,
            ..geometry
        };
        points.push(reference);

        let (outer, inner) = sweep_thread_split(ctx.threads, points.len());
        let config = ExperimentConfig::new(campaigns, ctx.seed).with_threads(inner);
        let results: Vec<ChurnEstimate> = parallel_sweep(outer, &points, |_i, churn| {
            churn_experiment(&plan, &campaign, churn, &config)
        });

        // Self-check: the static grid point must be bit-identical to the
        // churn-free experiment — same outcome counters from the same seeds.
        let baseline = detection_experiment_with(&plan, &campaign, &config);
        let zero = &results[0];
        let zero_ok = zero.outcome.campaign == baseline.outcome
            && zero.outcome.census.is_empty()
            && zero.outcome.events == 0;
        report.passed = zero_ok;

        let closed_form = 1.0 - (1.0 - eps).powf(1.0 - p);
        report.text(format!(
            "Closed-form detection with a static pool: {}.  Zero-churn grid point\n\
             matches the churn-free kernel bitwise: {}.",
            fnum(closed_form, 4),
            if zero_ok { "yes" } else { "NO" }
        ));
        report.blank();

        // Census time series for the mixed reference point: the drift story
        // tick by tick.
        let reference_est = results.last().unwrap();
        report.text(format!(
            "--- census series, leave rate {} + fail rate {} ---",
            fnum(reference.leave_rate, 3),
            fnum(reference.fail_rate, 3)
        ));
        let mut series = Table::new(&[
            "tick",
            "live workers",
            "live copies",
            "detection",
            "realized factor",
            "starved",
        ]);
        series.numeric();
        for sample in &reference_est.outcome.census {
            series.row(&[
                &sample.tick.to_string(),
                &fnum(sample.mean_live_workers(), 1),
                &fnum(sample.live_copies as f64 / sample.trials.max(1) as f64, 1),
                &fnum(sample.detection_rate().unwrap_or(0.0), 4),
                &fnum(sample.redundancy_factor(n), 3),
                &(sample.starved_tasks / sample.trials.max(1)).to_string(),
            ]);
        }
        report.table(series);
        report.blank();

        // Leave-rate sweep: final-checkpoint state per rate.
        report.text("--- leave-rate sweep (fail-free, same geometry) ---");
        let mut table = Table::new(&[
            "leave rate",
            "detection",
            "realized factor",
            "live workers",
            "reassigned/trial",
            "lost/trial",
            "starved/trial",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();
        let mut totals = (0u64, 0u64);
        for (churn, est) in points.iter().zip(&results) {
            let out = &est.outcome;
            totals.0 += out.campaign.tasks;
            totals.1 += out.campaign.assignments;
            let trials = out.trials.max(1);
            let detection = est.overall().estimate();
            let factor = est
                .realized_redundancy()
                .unwrap_or_else(|| planned_factor(est));
            let live = out
                .census
                .last()
                .map_or(churn.initial_workers as f64, |s| s.mean_live_workers());
            let starved = out
                .census
                .last()
                .map_or(0.0, |s| s.starved_tasks as f64 / s.trials.max(1) as f64);
            let row = (
                fnum(churn.leave_rate, 3),
                fnum(detection, 4),
                fnum(factor, 3),
                fnum(live, 1),
                fnum(out.reassignments as f64 / trials as f64, 1),
                fnum(out.lost_copies as f64 / trials as f64, 1),
                fnum(starved, 1),
            );
            if churn.fail_rate == 0.0 {
                table.row(&[&row.0, &row.1, &row.2, &row.3, &row.4, &row.5, &row.6]);
            }
            csv_rows.push(vec![
                fnum(churn.leave_rate, 4),
                fnum(churn.fail_rate, 4),
                fnum(detection, 6),
                fnum(factor, 6),
                fnum(live, 3),
                fnum(out.reassignments as f64 / trials as f64, 3),
                fnum(out.lost_copies as f64 / trials as f64, 3),
                fnum(starved, 3),
            ]);
        }
        report.table(table);
        report.blank();
        report.text(
            "Shape: departures alone leave detection near the closed form — copies\n\
             are reassigned, not lost — but inflate the realized factor as every\n\
             reassignment re-issues work.  Failures actually destroy copies, so the\n\
             mixed reference point shows detection decaying checkpoint by checkpoint\n\
             as the live multiset drifts below the Balanced mix.",
        );
        report.fact("campaigns_per_point", num_u64(campaigns));
        report.fact("grid_points", num_u64(points.len() as u64));
        report.fact(
            "census_checkpoints",
            num_u64(geometry.horizon / geometry.census_interval),
        );
        report.set_csv(
            "leave_rate,fail_rate,detection,realized_factor,mean_live_workers,\
             reassigned_per_trial,lost_per_trial,starved_per_trial",
            csv_rows,
        );
        report.counters(totals.0, totals.1);
        report
    }
}
