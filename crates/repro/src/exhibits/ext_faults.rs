//! Extension exhibit: detection under failures, stragglers, and retries.
//!
//! The paper's guarantees assume lossless delivery: every assigned copy
//! comes back and enters the comparison.  This exhibit drops that
//! assumption.  Per-assignment drop and straggler hazards shrink the
//! tuples the supervisor actually compares, so empirical detection falls
//! below the closed form `1 − (1−ε)^{1−p}`; a capped-exponential-backoff
//! retry budget buys most of it back.  Tables for the Balanced and
//! Golle–Stubblebine distributions, swept over drop rate and straggler
//! rate.
//!
//! Determinism: all latency is abstract ticks and every fault draw flows
//! through the chunked trial driver's per-chunk seeds, so the tables are
//! byte-identical for a fixed `--seed` regardless of `--threads`.  The
//! whole (scheme × hazard × rate) grid runs on one sweep pool, with each
//! point's experiments taking their share of the thread budget.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::RealizedPlan;
use redundancy_json::num_u64;
use redundancy_sim::{
    faulty_detection_experiment, AdversaryModel, CampaignConfig, CheatStrategy, ExperimentConfig,
    FaultModel,
};
use redundancy_stats::table::{fnum, Table};
use redundancy_stats::{parallel_sweep, sweep_thread_split};

pub struct ExtFaults;

/// Which per-assignment hazard a grid point sweeps.
#[derive(Clone, Copy, PartialEq)]
enum Hazard {
    Drop,
    Straggler,
}

impl Hazard {
    fn label(self) -> &'static str {
        match self {
            Hazard::Drop => "drop",
            Hazard::Straggler => "straggler",
        }
    }

    fn model(self, rate: f64) -> FaultModel {
        match self {
            Hazard::Drop => FaultModel::with_drop_rate(rate),
            // Mean delay 3× the 8-tick timeout: stragglers usually miss the
            // window and survive only through retries.
            Hazard::Straggler => FaultModel::with_stragglers(rate, 24.0),
        }
    }
}

/// Everything one grid point contributes to the tables, CSV, and footer.
struct PointResult {
    d0: f64,
    d3: f64,
    delivered: f64,
    eff: f64,
    unresolved: u64,
    tasks: u64,
    assignments: u64,
}

impl Exhibit for ExtFaults {
    fn name(&self) -> &'static str {
        "ext_faults"
    }

    fn summary(&self) -> &'static str {
        "detection vs drop/straggler rate, with and without retries"
    }

    fn paper_ref(&self) -> &'static str {
        "(ours)"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Extension: faults",
            "Empirical detection under per-assignment drops and stragglers, with and\n\
             without supervisor retries.  N = 10,000 tasks, eps = 0.5, p = 0.1.",
        );

        let n = 10_000u64;
        let eps = 0.5;
        let p = 0.1;
        let campaigns = 12 * ctx.trials_scale;
        let campaign = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p },
            CheatStrategy::AtLeast { min_copies: 1 },
        );
        let drop_rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
        let straggler_rates = [0.0, 0.2, 0.4, 0.6, 0.8];

        let schemes: Vec<(&str, RealizedPlan)> = vec![
            ("balanced", RealizedPlan::balanced(n, eps).unwrap()),
            (
                "golle-stubblebine",
                RealizedPlan::golle_stubblebine(n, eps).unwrap(),
            ),
        ];

        // Flatten the (scheme × hazard × rate) grid in print order, then run
        // every point on one shared sweep pool; each point's two experiments
        // get the leftover share of the thread budget.
        let mut points: Vec<(usize, Hazard, f64)> = Vec::new();
        for si in 0..schemes.len() {
            for &rate in &drop_rates {
                points.push((si, Hazard::Drop, rate));
            }
            for &rate in &straggler_rates {
                points.push((si, Hazard::Straggler, rate));
            }
        }
        let (outer, inner) = sweep_thread_split(ctx.threads, points.len());
        let config = ExperimentConfig::new(campaigns, ctx.seed).with_threads(inner);
        let results = parallel_sweep(outer, &points, |_i, &(si, hazard, rate)| {
            let plan = &schemes[si].1;
            let no_retry = FaultModel {
                max_retries: 0,
                ..hazard.model(rate)
            };
            let with_retry = FaultModel {
                max_retries: 3,
                ..hazard.model(rate)
            };
            let bare = faulty_detection_experiment(plan, &campaign, &no_retry, &config);
            let retried = faulty_detection_experiment(plan, &campaign, &with_retry, &config);
            PointResult {
                d0: bare.overall().estimate(),
                d3: retried.overall().estimate(),
                delivered: retried.outcome.delivery_rate().unwrap_or(0.0),
                eff: retried.outcome.effective_multiplicity().unwrap_or(0.0),
                unresolved: retried.outcome.unresolved_tasks,
                tasks: bare.outcome.tasks + retried.outcome.tasks,
                assignments: bare.outcome.assignments + retried.outcome.assignments,
            }
        });

        let mut csv_rows = Vec::new();
        let mut totals = (0u64, 0u64);
        let mut rows = points.iter().zip(&results);
        for (name, plan) in &schemes {
            let expect = 1.0 - (1.0 - plan.epsilon()).powf(1.0 - p);
            report.text(format!(
                "--- {name} (closed-form detection with lossless delivery: {}) ---",
                fnum(expect, 4)
            ));
            for (hazard, label, count) in [
                (Hazard::Drop, "drop rate", drop_rates.len()),
                (Hazard::Straggler, "straggler rate", straggler_rates.len()),
            ] {
                let mut table = Table::new(&[
                    label,
                    "detection (no retry)",
                    "detection (3 retries)",
                    "delivered (3 retries)",
                    "eff. mult",
                    "unresolved",
                ]);
                table.numeric();
                for (&(_, ph, rate), r) in rows.by_ref().take(count) {
                    debug_assert!(ph == hazard);
                    totals.0 += r.tasks;
                    totals.1 += r.assignments;
                    table.row(&[
                        &fnum(rate, 2),
                        &fnum(r.d0, 4),
                        &fnum(r.d3, 4),
                        &fnum(r.delivered, 4),
                        &fnum(r.eff, 3),
                        &r.unresolved.to_string(),
                    ]);
                    csv_rows.push(vec![
                        name.to_string(),
                        hazard.label().to_string(),
                        fnum(rate, 2),
                        fnum(r.d0, 6),
                        fnum(r.d3, 6),
                        fnum(r.delivered, 6),
                        fnum(r.eff, 6),
                        r.unresolved.to_string(),
                    ]);
                }
                report.table(table);
                report.blank();
            }
        }
        report.text(
            "Shape: without retries detection decays roughly like the closed form with\n\
             eps scaled by the delivery rate; three retries hold it near the lossless\n\
             value until drop rates get extreme.  Both schemes degrade alike — the\n\
             hazard acts per assignment, not per scheme.",
        );
        report.fact("campaigns_per_point", num_u64(campaigns));
        report.fact("grid_points", num_u64(points.len() as u64));
        report.set_csv(
            "scheme,hazard,rate,detection_no_retry,detection_retry3,delivered,effective_multiplicity,unresolved",
            csv_rows,
        );
        report.counters(totals.0, totals.1);
        report
    }
}
