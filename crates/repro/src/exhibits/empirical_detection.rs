//! Empirical validation (beyond the paper): simulated detection rates
//! `P̂_{k,p}` for every scheme vs the closed forms, with Wilson intervals.
//!
//! A full volunteer-computing campaign is simulated per trial — plan
//! expansion, adversary assignment, collusion, supervisor comparison,
//! ringer checks — so this exercises the entire deployment code path, not
//! just the formulas.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::RealizedPlan;
use redundancy_json::num_u64;
use redundancy_sim::{detection_experiment, AdversaryModel, CheatStrategy, ExperimentConfig};
use redundancy_stats::table::{fnum, Table};

pub struct EmpiricalDetection;

impl Exhibit for EmpiricalDetection {
    fn name(&self) -> &'static str {
        "empirical_detection"
    }

    fn summary(&self) -> &'static str {
        "simulated P(k,p) for realized plans vs the closed forms"
    }

    fn paper_ref(&self) -> &'static str {
        "(ours)"
    }

    fn run(&self, ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Empirical detection",
            "Simulated P(k,p) for realized plans vs closed forms (Wilson 95% intervals).\n\
             N = 20,000 per campaign; adversary cheats on every task held.",
        );

        let n = 20_000u64;
        let campaigns = 30 * ctx.trials_scale;
        let mut table = Table::new(&[
            "scheme",
            "eps",
            "p",
            "k",
            "closed form",
            "simulated",
            "95% CI",
            "attacks",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();
        let mut sim_tasks = 0u64;
        let mut sim_assignments = 0u64;

        let mut scenario = |label: &str,
                            plan: &RealizedPlan,
                            eps: f64,
                            p: f64,
                            closed: &dyn Fn(usize) -> f64,
                            seed: u64| {
            let est = detection_experiment(
                plan,
                AdversaryModel::AssignmentFraction { p },
                CheatStrategy::AtLeast { min_copies: 1 },
                &ExperimentConfig::new(campaigns, seed),
            );
            sim_tasks += est.outcome.tasks;
            sim_assignments += est.outcome.assignments;
            for k in 1..=3usize {
                let Some(prop) = est.at_tuple(k) else {
                    continue;
                };
                let (lo, hi) = prop.wilson_interval(1.96);
                let cf = closed(k);
                table.row(&[
                    label,
                    &fnum(eps, 2),
                    &fnum(p, 2),
                    &k.to_string(),
                    &fnum(cf, 4),
                    &fnum(prop.estimate(), 4),
                    &format!("[{}, {}]", fnum(lo, 4), fnum(hi, 4)),
                    &prop.trials().to_string(),
                ]);
                csv_rows.push(vec![
                    label.into(),
                    fnum(eps, 2),
                    fnum(p, 2),
                    k.to_string(),
                    fnum(cf, 6),
                    fnum(prop.estimate(), 6),
                    prop.trials().to_string(),
                ]);
            }
        };

        for (eps, p, seed_off) in [
            (0.5, 0.05, 0),
            (0.5, 0.15, 1),
            (0.75, 0.1, 2),
            (0.75, 0.3, 3),
        ] {
            let bal = RealizedPlan::balanced(n, eps).expect("plan realizes");
            scenario(
                "balanced",
                &bal,
                eps,
                p,
                &|_k| 1.0 - (1.0 - eps).powf(1.0 - p),
                ctx.seed + seed_off,
            );
            let gs = RealizedPlan::golle_stubblebine(n, eps).expect("plan realizes");
            let c = 1.0 - (1.0 - eps).sqrt();
            scenario(
                "golle-stubblebine",
                &gs,
                eps,
                p,
                &|k| 1.0 - (1.0 - c * (1.0 - p)).powi(k as i32 + 1),
                ctx.seed + 100 + seed_off,
            );
        }
        // Simple redundancy: pair collusion never detected.
        let simple = RealizedPlan::k_fold(n, 2, 0.5).expect("plan realizes");
        scenario(
            "simple",
            &simple,
            0.5,
            0.15,
            &|k| if k >= 2 { 0.0 } else { 1.0 },
            ctx.seed + 999,
        );

        report.table(table);
        report.blank();
        report.text(
            "Every simulated rate should bracket its closed form; simple redundancy's\n\
             k = 2 row is exactly zero — the motivating collusion failure.",
        );
        report.fact("campaigns_per_scenario", num_u64(campaigns));
        report.fact("simulated_tasks", num_u64(sim_tasks));
        report.fact("simulated_assignments", num_u64(sim_assignments));
        report.set_csv("scheme,eps,p,k,closed_form,simulated,attacks", csv_rows);
        report.counters(sim_tasks, sim_assignments);
        report
    }
}
