//! Numeric verification of every analytic claim: Theorem 1, Propositions
//! 1–3, and the Golle–Stubblebine closed forms, all checked against the
//! generic tuple-counting engine.

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::{
    bounds, AssignmentMinimizing, Balanced, DetectionProfile, GolleStubblebine, Scheme,
};
use redundancy_json::num_u64;
use redundancy_stats::table::fnum;

pub struct TheoryChecks;

fn check(report: &mut Report, label: &str, ok: bool, detail: String) -> bool {
    report.text(format!(
        "[{}] {label}: {detail}",
        if ok { "PASS" } else { "FAIL" }
    ));
    ok
}

impl Exhibit for TheoryChecks {
    fn name(&self) -> &'static str {
        "theory_checks"
    }

    fn summary(&self) -> &'static str {
        "numeric verification of Theorem 1, Props 1-3, and the GS closed forms"
    }

    fn paper_ref(&self) -> &'static str {
        "Thm 1, Props 1-3"
    }

    fn run(&self, _ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Theory checks",
            "Numeric verification of Theorem 1 and Propositions 1-3 against the generic\n\
             k-tuple counting engine.",
        );
        let r = &mut report;
        let mut all_ok = true;
        let mut checks = 0u64;
        let n = 1_000_000u64;

        // --- Theorem 1 ---------------------------------------------------------
        for eps in [0.25, 0.5, 0.75, 0.9] {
            let bal = Balanced::new(n, eps).expect("valid");
            let total: f64 = (1..200).map(|i| bal.ideal_weight(i)).sum();
            all_ok &= check(
                r,
                "Thm 1.1 Σaᵢ = N",
                (total - n as f64).abs() < 1e-3,
                format!("eps={eps}: sum = {total:.6}"),
            );
            let prof = bal.detection_profile();
            let dim = prof.dimension();
            let max_dev = (1..=dim / 2)
                .filter_map(|k| prof.p_asymptotic(k))
                .map(|p| (p - eps).abs())
                .fold(0.0f64, f64::max);
            all_ok &= check(
                r,
                "Thm 1.2 P_k = eps for all k",
                max_dev < 1e-4,
                format!(
                    "eps={eps}: max |P_k - eps| = {max_dev:.2e} over k=1..{}",
                    dim / 2
                ),
            );
            let expect = n as f64 * (1.0 / (1.0 - eps)).ln() / eps;
            all_ok &= check(
                r,
                "Thm 1.3 total assignments",
                (bal.total_assignments_exact() - expect).abs() < 1e-6,
                format!("eps={eps}: {:.1}", bal.total_assignments_exact()),
            );
            checks += 3;
        }

        // --- Proposition 1 ------------------------------------------------------
        for eps in [0.3, 0.5, 0.8] {
            let bound = bounds::lower_bound_assignments(n, eps).expect("valid");
            let relaxed = bounds::relaxed_optimum(n, eps).expect("valid");
            let prof = DetectionProfile::from_distribution(&relaxed);
            all_ok &= check(
                r,
                "Prop 1 relaxed optimum attains 2N/(2-eps) with P1 = eps, P2 = 0",
                (relaxed.total_assignments() - bound).abs() < 1e-6
                    && (prof.p_asymptotic(1).unwrap() - eps).abs() < 1e-12
                    && prof.p_asymptotic(2) == Some(0.0),
                format!("eps={eps}: bound = {bound:.1}"),
            );
            let s16 = AssignmentMinimizing::solve(n, eps, 16).expect("solves");
            all_ok &= check(
                r,
                "Prop 1 valid S_16 strictly above the bound",
                s16.objective() > bound,
                format!(
                    "eps={eps}: S_16 = {:.1} > {:.1} (gap {:.3}%)",
                    s16.objective(),
                    bound,
                    100.0 * (s16.objective() - bound) / bound
                ),
            );
            checks += 2;
        }

        // --- Proposition 2 ------------------------------------------------------
        let bal = Balanced::new(n, 0.5).expect("valid");
        let prof = bal.detection_profile();
        let gap = bounds::equality_gap(&prof, 0.5, prof.dimension() / 2).expect("valid");
        all_ok &= check(
            r,
            "Prop 2 Balanced achieves equality in every constraint",
            gap < 1e-4,
            format!("max |P_k - eps| = {gap:.2e}"),
        );
        let gs = GolleStubblebine::for_threshold(n, 0.5).expect("valid");
        let gs_gap = bounds::equality_gap(&gs.detection_profile(), 0.5, 10).expect("valid");
        all_ok &= check(
            r,
            "Prop 2 GS over-protects higher k (wasted resources)",
            gs_gap > 0.2,
            format!("GS equality gap = {}", fnum(gs_gap, 4)),
        );
        checks += 2;

        // --- Proposition 3 ------------------------------------------------------
        for p in [0.0, 0.1, 0.3] {
            let closed = bal.p_nonasymptotic(1, p).expect("valid");
            let dim = prof.dimension();
            let max_dev = (1..=dim / 2)
                .map(|k| (prof.p_nonasymptotic(k, p).unwrap().unwrap() - closed).abs())
                .fold(0.0f64, f64::max);
            all_ok &= check(
                r,
                "Prop 3 P(k,p) = 1-(1-eps)^(1-p), independent of k",
                max_dev < 1e-4,
                format!("p={p}: closed = {closed:.6}, max dev = {max_dev:.2e}"),
            );
            checks += 1;
        }

        // --- Golle–Stubblebine closed forms -------------------------------------
        let gs_prof = gs.detection_profile();
        let mut dev = 0.0f64;
        for k in 1..10 {
            dev = dev.max((gs_prof.p_asymptotic(k).unwrap() - gs.p_asymptotic(k)).abs());
        }
        all_ok &= check(
            r,
            "GS closed form P_k = 1-(1-c)^(k+1)",
            dev < 1e-4,
            format!("max dev = {dev:.2e}"),
        );
        checks += 1;

        report.blank();
        if all_ok {
            report.text("All theory checks PASSED.");
        } else {
            report.text("SOME THEORY CHECKS FAILED — see above.");
        }
        report.passed = all_ok;
        report.fact("checks_run", num_u64(checks));
        report
    }
}
