//! Figure 2: the assignment-minimizing distributions per dimension.
//!
//! For N = 100,000 and ε = ½, each row gives the `S_m` optimum's
//! precompute requirement, redundancy factor, and minimum non-asymptotic
//! detection probability at p ∈ {0.05, 0.10, 0.15}; the final row is the
//! Balanced distribution.  Paper anchors reproduced: S₅ precompute 602,
//! S₆ jumps to 1923 (the "602 → 1923" localized exception), redundancy
//! factor rising S₃ → S₄, and the global trends (precompute ↓, factor ↓
//! toward 4/3, non-asymptotic minima collapsing as m grows).

use crate::{Exhibit, ExhibitCtx, Report};
use redundancy_core::{AssignmentMinimizing, Balanced};
use redundancy_json::{num_u64, Json};
use redundancy_stats::table::{fnum, Table};

pub struct Fig2MinimizingTable;

impl Exhibit for Fig2MinimizingTable {
    fn name(&self) -> &'static str {
        "fig2_minimizing_table"
    }

    fn summary(&self) -> &'static str {
        "per-dimension LP optima: precompute, redundancy factor, min P(k,p)"
    }

    fn paper_ref(&self) -> &'static str {
        "Figure 2"
    }

    fn run(&self, _ctx: &ExhibitCtx) -> Report {
        let mut report = Report::new(
            self.name(),
            "Figure 2",
            "Assignment-minimizing distributions: precompute, redundancy factor, and\n\
             minimum detection probabilities (N = 100,000, eps = 0.5). Final row: Balanced.",
        );

        let n = 100_000u64;
        let eps = 0.5;
        let ps = [0.05, 0.10, 0.15];

        let mut table = Table::new(&[
            "Dim",
            "Precompute",
            "Redund. Factor",
            "Min P (p=0.05)",
            "Min P (p=0.1)",
            "Min P (p=0.15)",
        ]);
        table.numeric();
        let mut csv_rows = Vec::new();

        for m in 2..=26usize {
            let sol = AssignmentMinimizing::solve(n, eps, m).expect("S_m solves");
            let prof = sol.verified_profile();
            let mins: Vec<f64> = ps
                .iter()
                .map(|&p| prof.effective_detection(p).expect("valid p"))
                .collect();
            table.row(&[
                &m.to_string(),
                &fnum(sol.precompute_required(), 0),
                &fnum(sol.objective() / n as f64, 4),
                &fnum(mins[0], 3),
                &fnum(mins[1], 3),
                &fnum(mins[2], 3),
            ]);
            csv_rows.push(vec![
                m.to_string(),
                fnum(sol.precompute_required(), 2),
                fnum(sol.objective() / n as f64, 6),
                fnum(mins[0], 6),
                fnum(mins[1], 6),
                fnum(mins[2], 6),
            ]);
        }

        // Final row: the Balanced distribution (negligible precompute — only
        // the handful of §6 ringers).
        let bal = Balanced::new(n, eps).expect("valid parameters");
        let plan = redundancy_core::RealizedPlan::balanced(n, eps).expect("plan realizes");
        let bal_mins: Vec<f64> = ps
            .iter()
            .map(|&p| bal.p_nonasymptotic(1, p).expect("valid p"))
            .collect();
        table.row(&[
            "Bal.",
            &plan.ringer_tasks().to_string(),
            &fnum(bal.redundancy_factor_exact(), 4),
            &fnum(bal_mins[0], 3),
            &fnum(bal_mins[1], 3),
            &fnum(bal_mins[2], 3),
        ]);
        csv_rows.push(vec![
            "balanced".into(),
            plan.ringer_tasks().to_string(),
            fnum(bal.redundancy_factor_exact(), 6),
            fnum(bal_mins[0], 6),
            fnum(bal_mins[1], 6),
            fnum(bal_mins[2], 6),
        ]);

        report.table(table);
        report.blank();
        report.text(
            "Paper anchors: S_5 precompute = 602, S_6 = 1923 (the localized exception);\n\
             factor rises S_3 -> S_4; factor tends to the Prop. 1 bound 4/3 = 1.3333;\n\
             the LP optima's min P collapses with p while Balanced holds 1 - 0.5^(1-p).",
        );
        report.fact("n", num_u64(n));
        report.fact("eps", Json::Num(eps));
        report.fact("balanced_factor", Json::Num(bal.redundancy_factor_exact()));
        report.set_csv(
            "dim,precompute,redundancy_factor,min_p_005,min_p_010,min_p_015",
            csv_rows,
        );
        report
    }
}
