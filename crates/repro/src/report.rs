//! The structured artifact every exhibit produces.
//!
//! A [`Report`] is an ordered list of [`Block`]s (tables, text paragraphs,
//! blank separator lines) plus machine-oriented extras: key/value facts, an
//! optional CSV row set, Monte-Carlo throughput counters, and a pass/fail
//! verdict.  One report renders three ways:
//!
//! * [`Report::render_text`] — the plain-text exhibit, byte-identical to
//!   what the standalone binaries have always printed (and what the golden
//!   snapshots under `tests/snapshots/` pin);
//! * [`Report::render_csv`] — the `--csv` payload, identical to the old
//!   per-binary `maybe_write_csv` output;
//! * [`Report::to_json`] — a versioned [`SCHEMA`] (`repro-report/v1`)
//!   document for dashboards and benchmarking pipelines, documented in
//!   docs/REPORTS.md.

use crate::ExhibitCtx;
use redundancy_json::{num_u64, obj, Json};
use redundancy_stats::table::Table;
use std::fmt::Write as _;

/// Schema identifier stamped into every JSON report.
pub const SCHEMA: &str = "repro-report/v1";

/// One ordered element of a report body.
#[derive(Debug, Clone)]
pub enum Block {
    /// A rendered fixed-width table (see `redundancy_stats::table`).
    Table(Table),
    /// One text paragraph; may contain embedded newlines.  Rendered with a
    /// trailing newline, exactly like the `println!` it replaces.
    Text(String),
    /// A blank separator line.
    Blank,
}

/// A machine-readable CSV row set attached to a report.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvRows {
    /// Comma-joined header line (no trailing newline).
    pub header: String,
    /// Data rows; each cell is pre-formatted.
    pub rows: Vec<Vec<String>>,
}

/// The structured output of one exhibit run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Registry name (also the legacy binary name).
    pub exhibit: String,
    /// Banner title, e.g. `Figure 1`.
    pub title: String,
    /// Banner description printed under the title.
    pub description: String,
    /// Ordered body blocks.
    pub blocks: Vec<Block>,
    /// Key/value facts for the JSON document (not rendered to text).
    pub facts: Vec<(String, Json)>,
    /// CSV row set, if the exhibit has one.
    pub csv: Option<CsvRows>,
    /// `false` when a self-checking exhibit (theory_checks) found a
    /// violated claim; the shim binaries exit 1 in that case.
    pub passed: bool,
    /// Simulated tasks, for the stderr throughput footer (0 = no footer).
    pub tasks: u64,
    /// Simulated assignments, for the stderr throughput footer.
    pub assignments: u64,
}

impl Report {
    /// Start a report with its banner fields.
    pub fn new(
        exhibit: impl Into<String>,
        title: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        Report {
            exhibit: exhibit.into(),
            title: title.into(),
            description: description.into(),
            blocks: Vec::new(),
            facts: Vec::new(),
            csv: None,
            passed: true,
            tasks: 0,
            assignments: 0,
        }
    }

    /// Append a table block.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.blocks.push(Block::Table(table));
        self
    }

    /// Append a text paragraph (one `println!` worth of output).
    pub fn text(&mut self, line: impl Into<String>) -> &mut Self {
        self.blocks.push(Block::Text(line.into()));
        self
    }

    /// Append a blank separator line.
    pub fn blank(&mut self) -> &mut Self {
        self.blocks.push(Block::Blank);
        self
    }

    /// Record a key/value fact for the JSON document.
    pub fn fact(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        self.facts.push((key.into(), value));
        self
    }

    /// Attach the CSV row set.
    pub fn set_csv(&mut self, header: impl Into<String>, rows: Vec<Vec<String>>) -> &mut Self {
        self.csv = Some(CsvRows {
            header: header.into(),
            rows,
        });
        self
    }

    /// Record Monte-Carlo throughput counters for the stderr footer.
    pub fn counters(&mut self, tasks: u64, assignments: u64) -> &mut Self {
        self.tasks = tasks;
        self.assignments = assignments;
        self
    }

    /// Render the plain-text exhibit: banner, then every block in order.
    ///
    /// Byte-identical to the historical per-binary `println!` sequences —
    /// this is the surface the golden snapshots pin.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let _ = writeln!(out, "{}", self.description);
        out.push('\n');
        for block in &self.blocks {
            match block {
                Block::Table(t) => out.push_str(&t.render()),
                Block::Text(s) => {
                    out.push_str(s);
                    out.push('\n');
                }
                Block::Blank => out.push('\n'),
            }
        }
        out
    }

    /// Render the CSV payload (`header` line plus one line per row), if the
    /// exhibit carries one.
    pub fn render_csv(&self) -> Option<String> {
        let csv = self.csv.as_ref()?;
        let mut out = String::new();
        out.push_str(&csv.header);
        out.push('\n');
        for row in &csv.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        Some(out)
    }

    /// Build the versioned `repro-report/v1` JSON document.
    ///
    /// Field-by-field schema in docs/REPORTS.md.  `ctx` contributes the
    /// reproducibility envelope (seed, trials scale, thread budget).
    pub fn to_json(&self, ctx: &ExhibitCtx) -> Json {
        let sections: Vec<Json> = self
            .blocks
            .iter()
            .filter_map(|block| match block {
                Block::Blank => None,
                Block::Text(s) => Some(obj(vec![
                    ("kind", Json::Str("text".into())),
                    ("text", Json::Str(s.clone())),
                ])),
                Block::Table(t) => Some(obj(vec![
                    ("kind", Json::Str("table".into())),
                    (
                        "columns",
                        Json::Arr(t.headers().iter().map(|h| Json::Str(h.clone())).collect()),
                    ),
                    (
                        "rows",
                        Json::Arr(
                            t.rows()
                                .iter()
                                .map(|row| {
                                    Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect())
                                })
                                .collect(),
                        ),
                    ),
                ])),
            })
            .collect();
        let csv = match &self.csv {
            None => Json::Null,
            Some(csv) => obj(vec![
                (
                    "header",
                    Json::Arr(
                        csv.header
                            .split(',')
                            .map(|h| Json::Str(h.to_string()))
                            .collect(),
                    ),
                ),
                (
                    "rows",
                    Json::Arr(
                        csv.rows
                            .iter()
                            .map(|row| {
                                Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect())
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            ("exhibit", Json::Str(self.exhibit.clone())),
            ("title", Json::Str(self.title.clone())),
            ("seed", num_u64(ctx.seed)),
            ("trials_scale", num_u64(ctx.trials_scale)),
            ("threads", num_u64(ctx.threads as u64)),
            ("passed", Json::Bool(self.passed)),
            (
                "facts",
                Json::Obj(
                    self.facts
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
            ("sections", Json::Arr(sections)),
            ("csv", csv),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redundancy_stats::table::fnum;

    fn sample() -> Report {
        let mut r = Report::new("demo_exhibit", "Demo", "A two-line\ndescription.");
        let mut t = Table::new(&["k", "v"]);
        t.numeric();
        t.row(&["a", &fnum(1.5, 2)]);
        r.table(t);
        r.blank();
        r.text("closing remark");
        r.fact("n", num_u64(42));
        r.set_csv("k,v", vec![vec!["a".into(), "1.50".into()]]);
        r
    }

    #[test]
    fn text_rendering_matches_the_legacy_print_sequence() {
        let text = sample().render_text();
        assert!(text.starts_with("=== Demo ===\nA two-line\ndescription.\n\n"));
        assert!(text.ends_with("\nclosing remark\n"));
        // Exactly one blank line between the table and the remark.
        assert!(text.contains("1.50\n\nclosing remark\n"), "{text}");
    }

    #[test]
    fn csv_rendering_matches_maybe_write_csv() {
        assert_eq!(sample().render_csv().unwrap(), "k,v\na,1.50\n");
        let mut r = sample();
        r.csv = None;
        assert!(r.render_csv().is_none());
    }

    #[test]
    fn json_document_carries_the_envelope_and_sections() {
        let ctx = ExhibitCtx {
            seed: 7,
            ..ExhibitCtx::default()
        };
        let doc = sample().to_json(&ctx);
        assert_eq!(doc.field_str("schema").unwrap(), SCHEMA);
        assert_eq!(doc.field_str("exhibit").unwrap(), "demo_exhibit");
        assert_eq!(doc.field_u64("seed").unwrap(), 7);
        assert_eq!(doc.field_u64("trials_scale").unwrap(), 1);
        assert!(doc.field("passed").unwrap().as_bool().unwrap());
        assert_eq!(doc.field("facts").unwrap().field_u64("n").unwrap(), 42);
        let sections = doc.field_arr("sections").unwrap();
        // Blank blocks are dropped; table + text survive in order.
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].field_str("kind").unwrap(), "table");
        assert_eq!(sections[1].field_str("kind").unwrap(), "text");
        let csv = doc.field("csv").unwrap();
        assert_eq!(csv.field_arr("header").unwrap().len(), 2);
        // The document round-trips through the strict parser.
        let text = redundancy_json::to_string(&doc);
        assert_eq!(redundancy_json::parse(&text).unwrap(), doc);
    }
}
