#![warn(missing_docs)]

//! # redundancy-repro — regenerate every table and figure of the paper
//!
//! One binary per exhibit (see DESIGN.md's per-experiment index):
//!
//! | Binary | Exhibit | Output |
//! |---|---|---|
//! | `fig1_detection_vs_p` | Figure 1 | detection vs adversary proportion, Balanced vs `S₉`/`S₂₆` |
//! | `fig2_minimizing_table` | Figure 2 | per-dimension precompute / factor / min `P_{k,p}` table |
//! | `fig3_redundancy_factors` | Figure 3 | redundancy factor vs ε for all four curves |
//! | `fig4_assignment_table` | Figure 4 | per-multiplicity task counts, Balanced vs GS vs simple |
//! | `sec6_implementation` | §6 | worked tail/ringer examples |
//! | `sec7_extension` | §7 | minimum-multiplicity redundancy factors |
//! | `theory_checks` | Thm 1, Props 1–3 | numeric verification of every analytic claim |
//! | `appendix_a_collusion` | Appendix A | two-phase `p²N` law and `1/√N` threshold |
//! | `empirical_detection` | (ours) | simulated `P̂_{k,p}` vs closed forms |
//! | `ext_survival` | (ours) | free cheats before first detection vs the geometric law |
//! | `ext_faults` | (ours) | detection vs drop/straggler rate, with and without retries |
//!
//! Every binary prints a plain-text table (via `redundancy_stats::table`)
//! and, when given `--csv <path>`, also writes machine-readable CSV.  All
//! randomized binaries take `--seed <u64>` (default 20050926, the
//! CLUSTER 2005 conference date) so EXPERIMENTS.md is exactly replayable.

use std::fmt::Write as _;

/// Shared CLI conventions for the repro binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// RNG seed (`--seed`).
    pub seed: u64,
    /// Optional CSV output path (`--csv`).
    pub csv: Option<String>,
    /// Scale factor for Monte-Carlo effort (`--trials-scale`), ≥ 1.
    pub trials_scale: u64,
    /// Thread budget (`--threads`), 0 = auto.  Shared by the sweep-level
    /// pool and the per-point Monte-Carlo runners (see
    /// `redundancy_stats::sweep_thread_split`); results are byte-identical
    /// at every value.
    pub threads: usize,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            seed: 20_050_926,
            csv: None,
            trials_scale: 1,
            threads: 0,
        }
    }
}

impl Cli {
    /// Parse from `std::env::args`, ignoring unknown flags.
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" if i + 1 < args.len() => {
                    cli.seed = args[i + 1].parse().unwrap_or(cli.seed);
                    i += 1;
                }
                "--csv" if i + 1 < args.len() => {
                    cli.csv = Some(args[i + 1].clone());
                    i += 1;
                }
                "--trials-scale" if i + 1 < args.len() => {
                    cli.trials_scale = args[i + 1].parse::<u64>().unwrap_or(1).max(1);
                    i += 1;
                }
                "--threads" if i + 1 < args.len() => {
                    cli.threads = args[i + 1].parse().unwrap_or(0);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        cli
    }

    /// Write CSV rows if `--csv` was given.
    pub fn maybe_write_csv(&self, header: &str, rows: &[Vec<String>]) {
        let Some(path) = &self.csv else { return };
        let mut out = String::new();
        out.push_str(header);
        out.push('\n');
        for row in rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("warning: could not write CSV to {path}: {e}");
        } else {
            println!("\n[csv written to {path}]");
        }
    }
}

/// Print a standard exhibit banner.
pub fn banner(exhibit: &str, description: &str) {
    println!("=== {exhibit} ===");
    println!("{description}");
    println!();
}

/// Print a wall-time / throughput footer for a Monte-Carlo exhibit.
///
/// Goes to **stderr**: stdout of every repro binary is pinned byte-for-byte
/// by the golden snapshots, so diagnostics that vary run-to-run must stay
/// off it.  Rates are simulated tasks and assignments per wall second
/// across every campaign the binary ran.
pub fn throughput_footer(
    exhibit: &str,
    tasks: u64,
    assignments: u64,
    elapsed: std::time::Duration,
) {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return;
    }
    eprintln!(
        "[{exhibit}] {secs:.2}s wall — {:.2}M tasks/s, {:.2}M assignments/s",
        tasks as f64 / secs / 1e6,
        assignments as f64 / secs / 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli() {
        let cli = Cli::default();
        assert_eq!(cli.seed, 20_050_926);
        assert!(cli.csv.is_none());
        assert_eq!(cli.trials_scale, 1);
        assert_eq!(cli.threads, 0);
    }

    #[test]
    fn footer_is_silent_on_zero_elapsed() {
        // Only stderr is touched, so this just must not panic or divide
        // by zero.
        throughput_footer("test", 100, 200, std::time::Duration::ZERO);
        throughput_footer("test", 100, 200, std::time::Duration::from_millis(5));
    }

    #[test]
    fn csv_noop_without_flag() {
        let cli = Cli::default();
        cli.maybe_write_csv("a,b", &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn csv_writes_when_asked() {
        let path = std::env::temp_dir().join("repro_cli_test.csv");
        let cli = Cli {
            csv: Some(path.to_string_lossy().into_owned()),
            ..Cli::default()
        };
        cli.maybe_write_csv("a,b", &[vec!["1".into(), "2".into()]]);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        let _ = std::fs::remove_file(&path);
    }
}
