#![warn(missing_docs)]

//! # redundancy-repro — the declarative exhibit registry
//!
//! Every table and figure of the paper is an [`Exhibit`]: a named entry in
//! the static [`registry`] that turns an [`ExhibitCtx`] (seed, trials
//! scale, thread budget) into a structured [`Report`].  One shared pipeline
//! renders that report as plain text (pinned byte-for-byte by the golden
//! snapshots), as CSV (`--csv`), and as a versioned `repro-report/v1` JSON
//! document (`redundancy repro --json`, schema in docs/REPORTS.md).
//!
//! Two front doors run the same registry entries:
//!
//! * `redundancy repro <name>` — the unified CLI subcommand (plus
//!   `--list`, `--all`, `--json <path>`);
//! * the 13 standalone binaries under `src/bin/`, thin shims over
//!   [`exhibit_main`].
//!
//! The authoritative exhibit index is [`render_index`] (what
//! `redundancy repro --list` prints, snapshot-pinned under
//! `tests/snapshots/repro_list.txt`); in summary:
//!
//! | Exhibit | Paper ref | Output |
//! |---|---|---|
//! | `fig1_detection_vs_p` | Figure 1 | detection vs adversary proportion, Balanced vs `S₉`/`S₂₆` |
//! | `fig2_minimizing_table` | Figure 2 | per-dimension precompute / factor / min `P_{k,p}` table |
//! | `fig3_redundancy_factors` | Figure 3 | redundancy factor vs ε for all four curves |
//! | `fig4_assignment_table` | Figure 4 | per-multiplicity task counts, Balanced vs GS vs simple |
//! | `sec6_implementation` | §6 | worked tail/ringer examples |
//! | `sec7_extension` | §7 | minimum-multiplicity redundancy factors |
//! | `theory_checks` | Thm 1, Props 1–3 | numeric verification of every analytic claim |
//! | `appendix_a_collusion` | Appendix A | two-phase `p²N` law and `1/√N` threshold |
//! | `empirical_detection` | (ours) | simulated `P̂_{k,p}` vs closed forms |
//! | `ext_survival` | (ours) | free cheats before first detection vs the geometric law |
//! | `ext_faults` | (ours) | detection vs drop/straggler rate, with and without retries |
//! | `ext_churn` | (ours) | detection and realized redundancy drift under worker churn |
//! | `ext_serve` | (ours) | drained live-serve sessions vs the batched kernel, bit for bit |
//!
//! All randomized exhibits take `--seed <u64>` (default [`DEFAULT_SEED`],
//! the CLUSTER 2005 conference date) so EXPERIMENTS.md is exactly
//! replayable.

use std::fmt;

mod exhibits;
pub mod report;

pub use report::{Block, CsvRows, Report, SCHEMA};

/// Default RNG seed: 20050926, the CLUSTER 2005 conference date.
pub const DEFAULT_SEED: u64 = 20_050_926;

/// One registry entry: a named generator for a paper table or figure.
///
/// Implementations are stateless unit structs in `src/exhibits/`; adding a
/// workload means adding one module and one registry line, not a binary.
pub trait Exhibit: Sync {
    /// Registry name; also the legacy standalone binary name.
    fn name(&self) -> &'static str;
    /// One-line summary for `redundancy repro --list`.
    fn summary(&self) -> &'static str;
    /// Which part of the paper (or which extension) this reproduces.
    fn paper_ref(&self) -> &'static str;
    /// Generate the report.  Must be deterministic in `ctx` — including
    /// across `ctx.threads` values — because the text rendering is pinned
    /// by the golden snapshots.
    fn run(&self, ctx: &ExhibitCtx) -> Report;
}

/// The full registry, in paper order.
pub fn registry() -> &'static [&'static dyn Exhibit] {
    exhibits::REGISTRY
}

/// Look up an exhibit by registry name.
pub fn find(name: &str) -> Option<&'static dyn Exhibit> {
    registry().iter().copied().find(|e| e.name() == name)
}

/// Shared execution context for every exhibit, parsed once by the shared
/// flag parser (used by both the legacy binaries and `redundancy repro`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExhibitCtx {
    /// RNG seed (`--seed`).
    pub seed: u64,
    /// Optional CSV output path (`--csv`).
    pub csv: Option<String>,
    /// Scale factor for Monte-Carlo effort (`--trials-scale`), ≥ 1.
    pub trials_scale: u64,
    /// Thread budget (`--threads`), 0 = auto.  Shared by the sweep-level
    /// pool and the per-point Monte-Carlo runners (see
    /// `redundancy_stats::sweep_thread_split`); results are byte-identical
    /// at every value.
    pub threads: usize,
}

impl Default for ExhibitCtx {
    fn default() -> Self {
        ExhibitCtx {
            seed: DEFAULT_SEED,
            csv: None,
            trials_scale: 1,
            threads: 0,
        }
    }
}

/// Failures from the shared exhibit flag parser.  Rendered messages match
/// the `redundancy` CLI's conventions (name the flag, say what was
/// expected) and drive the established exit-code-2 path in both front
/// doors.
#[derive(Debug, Clone, PartialEq)]
pub enum CtxError {
    /// Flag present but no value followed.
    MissingValue(String),
    /// Value failed to parse or was out of range.
    BadValue {
        /// The flag.
        flag: &'static str,
        /// The rejected value.
        value: String,
        /// What would have been accepted.
        expected: &'static str,
    },
    /// Unknown flag (only when parsing strictly, i.e. for the CLI
    /// subcommand; the legacy binaries ignore unknown flags).
    UnknownFlag(String),
}

impl fmt::Display for CtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtxError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            CtxError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for `{flag}` (expected {expected})"),
            CtxError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}` for `repro`"),
        }
    }
}

impl std::error::Error for CtxError {}

impl ExhibitCtx {
    /// Parse the shared exhibit flags from an argv slice (program name
    /// excluded).
    ///
    /// `reject_unknown` selects the two front doors' behaviors: the
    /// `redundancy repro` subcommand is strict, while the legacy binaries
    /// ignore flags they do not know (the snapshot harness and older
    /// scripts rely on that).  Known flags are always validated —
    /// `--trials-scale 0` or a malformed `--seed` is an error naming the
    /// flag, never a silent fallback.
    pub fn parse_from(args: &[String], reject_unknown: bool) -> Result<Self, CtxError> {
        fn value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, CtxError> {
            args.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| CtxError::MissingValue(flag.into()))
        }
        fn parse<T: std::str::FromStr>(
            raw: &str,
            flag: &'static str,
            expected: &'static str,
        ) -> Result<T, CtxError> {
            raw.parse().map_err(|_| CtxError::BadValue {
                flag,
                value: raw.into(),
                expected,
            })
        }
        let mut ctx = ExhibitCtx::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    ctx.seed = parse(value(args, i, "--seed")?, "--seed", "a 64-bit integer")?;
                    i += 1;
                }
                "--csv" => {
                    ctx.csv = Some(value(args, i, "--csv")?.to_string());
                    i += 1;
                }
                "--trials-scale" => {
                    let raw = value(args, i, "--trials-scale")?;
                    let scale: u64 = parse(raw, "--trials-scale", "a positive integer")?;
                    if scale == 0 {
                        return Err(CtxError::BadValue {
                            flag: "--trials-scale",
                            value: raw.into(),
                            expected: "a positive integer (scales Monte-Carlo effort up)",
                        });
                    }
                    ctx.trials_scale = scale;
                    i += 1;
                }
                "--threads" => {
                    let raw = value(args, i, "--threads")?;
                    let threads: usize = parse(raw, "--threads", "a thread count (0 = auto)")?;
                    if threads > redundancy_stats::MAX_THREADS {
                        return Err(CtxError::BadValue {
                            flag: "--threads",
                            value: raw.into(),
                            expected: "a thread count of at most 1024 (0 = auto)",
                        });
                    }
                    ctx.threads = threads;
                    i += 1;
                }
                other if reject_unknown => {
                    return Err(CtxError::UnknownFlag(other.into()));
                }
                _ => {}
            }
            i += 1;
        }
        Ok(ctx)
    }

    /// Parse from `std::env::args` with the legacy binaries' semantics
    /// (unknown flags ignored, known flags validated).
    pub fn parse_env() -> Result<Self, CtxError> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&args, false)
    }
}

/// The exhibit index `redundancy repro --list` prints.
///
/// Generated from the registry itself (names, paper references, and
/// summaries come from the `Exhibit` impls), and snapshot-pinned in
/// `tests/snapshots/repro_list.txt`, so the documented index can never
/// drift from the code.
pub fn render_index() -> String {
    use redundancy_stats::table::Table;
    let mut out = String::new();
    out.push_str(
        "repro exhibits — every table and figure of the paper, one registry entry each\n\n",
    );
    let mut table = Table::new(&["name", "paper ref", "summary"]);
    for exhibit in registry() {
        table.row(&[exhibit.name(), exhibit.paper_ref(), exhibit.summary()]);
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str(
        "Run `redundancy repro <name>` for one exhibit, `--all` for every exhibit;\n\
         shared flags: --seed, --csv, --trials-scale, --threads; add --json <path>\n\
         for a repro-report/v1 document (see docs/REPORTS.md).\n",
    );
    out
}

/// Render a report's text and perform its CSV side effect, returning the
/// exact bytes the exhibit prints on stdout.
///
/// When `ctx.csv` is set and the write succeeds, the historical
/// `\n[csv written to <path>]` note is appended; a failed write warns on
/// stderr and leaves stdout untouched, exactly like the old per-binary
/// `maybe_write_csv`.
pub fn emit_text(report: &Report, ctx: &ExhibitCtx) -> String {
    let mut out = report.render_text();
    if let (Some(path), Some(body)) = (&ctx.csv, report.render_csv()) {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("warning: could not write CSV to {path}: {e}");
        } else {
            out.push_str(&format!("\n[csv written to {path}]\n"));
        }
    }
    out
}

/// Shared `main` for the legacy standalone binaries: parse the shared
/// flags, run the named registry entry, print its text rendering, honor
/// `--csv`, emit the stderr throughput footer, and exit 1 if the exhibit's
/// self-checks failed (2 on flag errors).
pub fn exhibit_main(name: &str) -> ! {
    let ctx = match ExhibitCtx::parse_env() {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let exhibit = find(name).unwrap_or_else(|| panic!("exhibit `{name}` not in the registry"));
    let start = std::time::Instant::now();
    let report = exhibit.run(&ctx);
    print!("{}", emit_text(&report, &ctx));
    if report.tasks > 0 {
        throughput_footer(name, report.tasks, report.assignments, start.elapsed());
    }
    std::process::exit(if report.passed { 0 } else { 1 });
}

/// Print a wall-time / throughput footer for a Monte-Carlo exhibit.
///
/// Goes to **stderr**: stdout of every repro exhibit is pinned
/// byte-for-byte by the golden snapshots, so diagnostics that vary
/// run-to-run must stay off it.  Rates are simulated tasks and assignments
/// per wall second across every campaign the exhibit ran.
pub fn throughput_footer(
    exhibit: &str,
    tasks: u64,
    assignments: u64,
    elapsed: std::time::Duration,
) {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return;
    }
    eprintln!(
        "[{exhibit}] {secs:.2}s wall — {:.2}M tasks/s, {:.2}M assignments/s",
        tasks as f64 / secs / 1e6,
        assignments as f64 / secs / 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_ctx() {
        let ctx = ExhibitCtx::default();
        assert_eq!(ctx.seed, DEFAULT_SEED);
        assert!(ctx.csv.is_none());
        assert_eq!(ctx.trials_scale, 1);
        assert_eq!(ctx.threads, 0);
    }

    #[test]
    fn parses_all_shared_flags() {
        let ctx = ExhibitCtx::parse_from(
            &argv(&[
                "--seed",
                "7",
                "--csv",
                "out.csv",
                "--trials-scale",
                "3",
                "--threads",
                "2",
            ]),
            true,
        )
        .unwrap();
        assert_eq!(ctx.seed, 7);
        assert_eq!(ctx.csv.as_deref(), Some("out.csv"));
        assert_eq!(ctx.trials_scale, 3);
        assert_eq!(ctx.threads, 2);
    }

    #[test]
    fn rejects_zero_trials_scale_naming_the_flag() {
        let err = ExhibitCtx::parse_from(&argv(&["--trials-scale", "0"]), false).unwrap_err();
        assert!(err.to_string().contains("--trials-scale"), "{err}");
        assert!(matches!(err, CtxError::BadValue { flag, .. } if flag == "--trials-scale"));
    }

    #[test]
    fn rejects_malformed_values_instead_of_silent_defaults() {
        for flags in [["--seed", "banana"], ["--threads", "many"]] {
            let err = ExhibitCtx::parse_from(&argv(&flags), false).unwrap_err();
            assert!(err.to_string().contains(flags[0]), "{err}");
        }
        let err = ExhibitCtx::parse_from(&argv(&["--threads", "99999"]), false).unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
    }

    #[test]
    fn unknown_flags_ignored_only_in_lenient_mode() {
        let lenient = ExhibitCtx::parse_from(&argv(&["--bogus", "1", "--seed", "9"]), false);
        assert_eq!(lenient.unwrap().seed, 9);
        let strict = ExhibitCtx::parse_from(&argv(&["--bogus", "1"]), true);
        assert_eq!(strict, Err(CtxError::UnknownFlag("--bogus".into())));
    }

    #[test]
    fn missing_value_is_reported() {
        let err = ExhibitCtx::parse_from(&argv(&["--seed"]), false).unwrap_err();
        assert_eq!(err, CtxError::MissingValue("--seed".into()));
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<_> = registry().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 13);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13, "duplicate registry names");
        for exhibit in registry() {
            assert!(find(exhibit.name()).is_some());
            assert!(!exhibit.summary().is_empty());
            assert!(!exhibit.paper_ref().is_empty());
        }
        assert!(find("no_such_exhibit").is_none());
    }

    #[test]
    fn index_lists_every_registry_entry() {
        let index = render_index();
        for exhibit in registry() {
            assert!(index.contains(exhibit.name()), "{} missing", exhibit.name());
        }
        assert!(index.contains("docs/REPORTS.md"));
    }

    #[test]
    fn footer_is_silent_on_zero_elapsed() {
        // Only stderr is touched, so this just must not panic or divide
        // by zero.
        throughput_footer("test", 100, 200, std::time::Duration::ZERO);
        throughput_footer("test", 100, 200, std::time::Duration::from_millis(5));
    }

    #[test]
    fn csv_side_effect_writes_and_notes() {
        let path = std::env::temp_dir().join("repro_ctx_test.csv");
        let ctx = ExhibitCtx {
            csv: Some(path.to_string_lossy().into_owned()),
            ..ExhibitCtx::default()
        };
        let mut report = Report::new("demo", "Demo", "d");
        report.set_csv("a,b", vec![vec!["1".into(), "2".into()]]);
        let out = emit_text(&report, &ctx);
        assert!(out.ends_with(&format!("\n[csv written to {}]\n", path.display())));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = std::fs::remove_file(&path);
        // Without --csv, stdout is exactly the text rendering.
        let plain = ExhibitCtx::default();
        assert_eq!(emit_text(&report, &plain), report.render_text());
    }
}
