//! Shared helpers for the criterion benchmark suite.
//!
//! The actual benchmarks live in `benches/`; this library hosts small
//! utilities (parameter grids, fixture builders) reused across them.
pub mod fixtures;
