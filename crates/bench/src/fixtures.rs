//! Parameter grids shared by the benchmark targets.

/// Detection thresholds swept by the figure benchmarks.
pub const EPSILONS: [f64; 4] = [0.25, 0.5, 0.75, 0.9];

/// Adversary proportions swept by the non-asymptotic benchmarks.
pub const PROPORTIONS: [f64; 4] = [0.0, 0.05, 0.1, 0.15];

/// Paper-scale task counts.
pub const TASK_COUNTS: [u64; 3] = [10_000, 100_000, 1_000_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_well_formed() {
        assert!(EPSILONS.iter().all(|&e| 0.0 < e && e < 1.0));
        assert!(EPSILONS.windows(2).all(|w| w[0] < w[1]));
        assert!(PROPORTIONS.iter().all(|&p| (0.0..1.0).contains(&p)));
        assert!(TASK_COUNTS.iter().all(|&n| n > 0));
    }
}
