//! Batched campaign kernel vs the frozen reference loop, the cached
//! samplers vs the per-draw walks, `run_trials` thread scaling, and the
//! `parallel_sweep` grid driver at increasing pool widths.
//!
//! The acceptance bar for the batching work is the `campaign_kernel`
//! group: `batched` must beat `reference` by ≥ 2x on the Fig. 1 fixture
//! (Balanced plan, assignment-fraction adversary, cheat-on-everything).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use redundancy_core::RealizedPlan;
use redundancy_sim::engine::{reference, run_campaign_with_scratch, CampaignScratch};
use redundancy_sim::outcome::CampaignOutcome;
use redundancy_sim::task::expand_plan;
use redundancy_sim::{AdversaryModel, CampaignAccumulator, CampaignConfig, CheatStrategy};
use redundancy_stats::samplers::{sample_binomial, sample_hypergeometric};
use redundancy_stats::{
    parallel_sweep, run_trials, BinomialCache, DeterministicRng, HypergeometricCache, TrialConfig,
};

/// The Fig. 1 empirical-detection fixture: Balanced plan, 10% adversary,
/// naive cheat-on-everything strategy.
fn fig1_config() -> CampaignConfig {
    CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.1 },
        CheatStrategy::Always,
    )
}

fn bench_campaign_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_kernel");
    let cfg = fig1_config();
    let n = 10_000u64;
    let tasks = expand_plan(&RealizedPlan::balanced(n, 0.6).unwrap());
    group.throughput(Throughput::Elements(tasks.len() as u64));
    group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
        let mut rng = DeterministicRng::new(1);
        b.iter(|| {
            let mut out = CampaignOutcome::default();
            reference::run_campaign(&tasks, &cfg, &mut rng, &mut out);
            out.total_detected()
        })
    });
    group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
        let mut rng = DeterministicRng::new(1);
        let mut scratch = CampaignScratch::new();
        b.iter(|| {
            let mut out = CampaignOutcome::default();
            run_campaign_with_scratch(&tasks, &cfg, &mut rng, &mut out, &mut scratch);
            out.total_detected()
        })
    });
    group.finish();
}

fn bench_sampler_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_cache");
    group.bench_function("binomial_walk_n12_p01", |b| {
        let mut rng = DeterministicRng::new(2);
        b.iter(|| sample_binomial(&mut rng, 12, 0.1))
    });
    group.bench_function("binomial_cached_n12_p01", |b| {
        let mut rng = DeterministicRng::new(2);
        let mut cache = BinomialCache::default();
        let id = cache.prepare(12, 0.1);
        b.iter(|| cache.sample_prepared(id, &mut rng))
    });
    group.bench_function("hypergeometric_walk_20k_2k_12", |b| {
        let mut rng = DeterministicRng::new(3);
        b.iter(|| sample_hypergeometric(&mut rng, 20_000, 2_000, 12))
    });
    group.bench_function("hypergeometric_cached_20k_2k_12", |b| {
        let mut rng = DeterministicRng::new(3);
        let mut cache = HypergeometricCache::default();
        let id = cache.prepare(20_000, 2_000, 12);
        b.iter(|| cache.sample_prepared(id, &mut rng))
    });
    group.finish();
}

fn bench_run_trials_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_trials_scaling");
    group.sample_size(10);
    let cfg = fig1_config();
    let tasks = expand_plan(&RealizedPlan::balanced(2_000, 0.6).unwrap());
    let campaigns = 64u64;
    group.throughput(Throughput::Elements(campaigns * tasks.len() as u64));
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("campaigns64", threads),
            &threads,
            |b, &threads| {
                let trial_cfg = TrialConfig {
                    trials: campaigns,
                    chunk_size: TrialConfig::CAMPAIGN_CHUNK_SIZE,
                    threads,
                    seed: 9,
                    sampler: Default::default(),
                };
                b.iter(|| {
                    let acc: CampaignAccumulator = run_trials(
                        &trial_cfg,
                        |rng, _i, acc: &mut CampaignAccumulator| {
                            run_campaign_with_scratch(
                                &tasks,
                                &cfg,
                                rng,
                                &mut acc.outcome,
                                &mut acc.scratch,
                            )
                        },
                        |a, b| a.merge(b),
                    );
                    acc.outcome.total_detected()
                })
            },
        );
    }
    group.finish();
}

/// The exhibits' outer-grid pattern: a grid of independent experiments,
/// each run single-threaded on a shared `parallel_sweep` pool.  Results
/// are identical at every width; only the wall clock should move.
fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);
    let cfg = fig1_config();
    let tasks = expand_plan(&RealizedPlan::balanced(2_000, 0.6).unwrap());
    let grid: Vec<u64> = (0..16).collect();
    let campaigns = 8u64;
    group.throughput(Throughput::Elements(
        grid.len() as u64 * campaigns * tasks.len() as u64,
    ));
    for &width in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("grid16", width), &width, |b, &width| {
            b.iter(|| {
                let outs = parallel_sweep(width, &grid, |idx, _point| {
                    let trial_cfg = TrialConfig {
                        trials: campaigns,
                        chunk_size: TrialConfig::CAMPAIGN_CHUNK_SIZE,
                        threads: 1,
                        seed: 9 + idx as u64,
                        sampler: Default::default(),
                    };
                    let acc: CampaignAccumulator = run_trials(
                        &trial_cfg,
                        |rng, _i, acc: &mut CampaignAccumulator| {
                            run_campaign_with_scratch(
                                &tasks,
                                &cfg,
                                rng,
                                &mut acc.outcome,
                                &mut acc.scratch,
                            )
                        },
                        |a, b| a.merge(b),
                    );
                    acc.outcome.total_detected()
                });
                outs.into_iter().fold(0u64, u64::wrapping_add)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign_kernel,
    bench_sampler_cache,
    bench_run_trials_scaling,
    bench_sweep_scaling
);
criterion_main!(benches);
