//! Simulator throughput benchmarks: campaign engine, two-phase trials,
//! and the samplers they sit on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use redundancy_core::RealizedPlan;
use redundancy_sim::engine::{run_campaign, CampaignConfig};
use redundancy_sim::outcome::CampaignOutcome;
use redundancy_sim::task::expand_plan;
use redundancy_sim::two_phase::{two_phase_batch, TwoPhaseConfig};
use redundancy_sim::{AdversaryModel, CheatStrategy};
use redundancy_stats::samplers::{sample_binomial, sample_hypergeometric};
use redundancy_stats::DeterministicRng;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    for &n in &[1_000u64, 10_000] {
        let plan = RealizedPlan::balanced(n, 0.6).unwrap();
        let tasks = expand_plan(&plan);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.1 },
            CheatStrategy::Always,
        );
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("balanced_always_cheat", n), &n, |b, _| {
            let mut rng = DeterministicRng::new(1);
            b.iter(|| {
                let mut out = CampaignOutcome::default();
                run_campaign(&tasks, &cfg, &mut rng, &mut out);
                out.total_detected()
            })
        });
    }
    group.finish();
}

fn bench_two_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_phase");
    group.bench_function("batch_1000_trials_n1e6", |b| {
        let cfg = TwoPhaseConfig::new(1_000_000, 0.001);
        let mut rng = DeterministicRng::new(2);
        b.iter(|| two_phase_batch(&cfg, 1_000, &mut rng).cheatable_trials)
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.bench_function("binomial_n12_p01", |b| {
        let mut rng = DeterministicRng::new(3);
        b.iter(|| sample_binomial(&mut rng, 12, 0.1))
    });
    group.bench_function("hypergeometric_20k_2k_12", |b| {
        let mut rng = DeterministicRng::new(4);
        b.iter(|| sample_hypergeometric(&mut rng, 20_000, 2_000, 12))
    });
    group.finish();
}

criterion_group!(benches, bench_campaign, bench_two_phase, bench_samplers);
criterion_main!(benches);
