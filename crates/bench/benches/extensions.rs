//! Benchmarks for the workspace extensions: presolve, MPS, the reactive
//! platform, survival careers, sampled estimation, and goodness-of-fit.

use criterion::{criterion_group, criterion_main, Criterion};
use redundancy_core::RealizedPlan;
use redundancy_lp::{parse_mps, solve_with_presolve, write_mps, Problem, Relation, Sense};
use redundancy_sim::engine::CampaignConfig;
use redundancy_sim::experiment::{sampled_detection_experiment, ExperimentConfig};
use redundancy_sim::rounds::{run_platform, PlatformConfig};
use redundancy_sim::survival::career;
use redundancy_sim::task::expand_plan;
use redundancy_sim::{AdversaryModel, CheatStrategy};
use redundancy_stats::gof::{chi_square_test, regularized_gamma_q};
use redundancy_stats::{DeterministicRng, Histogram, P2Quantile};

fn s_m_lp(dim: usize) -> Problem {
    let mut lp = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (1..=dim)
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    for (i, v) in vars.iter().enumerate() {
        lp.set_objective(*v, (i + 1) as f64);
    }
    let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&cover, Relation::Ge, 100_000.0);
    for k in 1..dim {
        let mut terms = vec![(vars[k - 1], -0.5)];
        for i in (k + 1)..=dim {
            terms.push((
                vars[i - 1],
                0.5 * redundancy_stats::special::binomial(i as u64, k as u64),
            ));
        }
        lp.add_constraint(&terms, Relation::Ge, 0.0);
    }
    lp
}

fn bench_lp_tooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_lp_tooling");
    let lp = s_m_lp(10);
    let doc = write_mps(&lp, "S10");
    group.bench_function("mps_write_s10", |b| b.iter(|| write_mps(&lp, "S10").len()));
    group.bench_function("mps_parse_s10", |b| {
        b.iter(|| parse_mps(&doc).unwrap().num_variables())
    });
    group.bench_function("presolve_and_solve_s10", |b| {
        b.iter(|| solve_with_presolve(&lp).unwrap().0.objective)
    });
    group.finish();
}

fn bench_platform(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_platform");
    group.sample_size(10);
    let plan = RealizedPlan::balanced(5_000, 0.75).unwrap();
    group.bench_function("ten_round_platform_5k_tasks", |b| {
        let cfg = PlatformConfig::strict(9_000, 1_000, CheatStrategy::AtLeast { min_copies: 1 });
        let mut rng = DeterministicRng::new(1);
        b.iter(|| run_platform(&plan, &cfg, 10, &mut rng).rounds.len())
    });
    group.bench_function("single_adversary_career", |b| {
        let tasks = expand_plan(&plan);
        let cfg = CampaignConfig::new(
            AdversaryModel::AssignmentFraction { p: 0.1 },
            CheatStrategy::AtLeast { min_copies: 1 },
        );
        let mut rng = DeterministicRng::new(2);
        b.iter(|| career(&tasks, &cfg, &mut rng).0)
    });
    group.finish();
}

fn bench_sampled_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_sampled");
    group.sample_size(10);
    let plan = RealizedPlan::balanced(10_000_000, 0.5).unwrap();
    let campaign = CampaignConfig::new(
        AdversaryModel::AssignmentFraction { p: 0.1 },
        CheatStrategy::AtLeast { min_copies: 1 },
    );
    group.bench_function("sampled_10k_of_10m_tasks", |b| {
        b.iter(|| {
            sampled_detection_experiment(&plan, &campaign, 10_000, &ExperimentConfig::new(1, 3))
                .outcome
                .total_attempted()
        })
    });
    group.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_statistics");
    group.bench_function("regularized_gamma_q", |b| {
        b.iter(|| regularized_gamma_q(8.0, 11.5))
    });
    group.bench_function("chi_square_20_bins", |b| {
        let mut hist = Histogram::new();
        let mut rng = DeterministicRng::new(4);
        for _ in 0..10_000 {
            hist.record(rng.below(20) as usize);
        }
        let probs = vec![0.05f64; 20];
        b.iter(|| chi_square_test(&hist, &probs, 5.0).unwrap().p_value)
    });
    group.bench_function("p2_quantile_push", |b| {
        let mut q = P2Quantile::new(0.5);
        let mut rng = DeterministicRng::new(5);
        b.iter(|| {
            q.push(rng.uniform());
            q.estimate()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lp_tooling,
    bench_platform,
    bench_sampled_estimation,
    bench_statistics
);
criterion_main!(benches);
