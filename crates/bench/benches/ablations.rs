//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * simplex pivot rule (Dantzig-with-Bland-fallback vs pure Bland);
//! * closed-form detection vs the generic tuple-counting engine;
//! * single-stage `S_m` solve vs the lexicographic min-precompute
//!   refinement (also reports the precompute delta as a side effect of
//!   its setup assertions).

use criterion::{criterion_group, criterion_main, Criterion};
use redundancy_core::{AssignmentMinimizing, Balanced, Scheme};
use redundancy_lp::{PivotRule, Problem, Relation, Sense, SimplexOptions};

fn fig2_style_lp(dim: usize) -> Problem {
    // A hand-rolled S_m-shaped LP so the pivot-rule ablation does not go
    // through the core crate's fixed options.
    let mut lp = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (1..=dim)
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    for (i, v) in vars.iter().enumerate() {
        lp.set_objective(*v, (i + 1) as f64);
    }
    let cover: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&cover, Relation::Ge, 100_000.0);
    for k in 1..dim {
        let mut terms = vec![(vars[k - 1], -0.5)];
        let mut scale = 0.5f64;
        for i in (k + 1)..=dim {
            let coeff = 0.5 * redundancy_stats::special::binomial(i as u64, k as u64);
            scale = scale.max(coeff);
            terms.push((vars[i - 1], coeff));
        }
        for t in &mut terms {
            t.1 /= scale;
        }
        lp.add_constraint(&terms, Relation::Ge, 0.0);
    }
    lp
}

fn bench_pivot_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pivot_rule");
    group.sample_size(20);
    let lp = fig2_style_lp(16);
    for (name, rule) in [
        ("adaptive_dantzig", PivotRule::default()),
        ("pure_bland", PivotRule::Bland),
        ("pure_dantzig", PivotRule::Dantzig),
    ] {
        let opts = SimplexOptions {
            pivot_rule: rule,
            ..SimplexOptions::default()
        };
        group.bench_function(name, |b| b.iter(|| lp.solve_with(&opts).unwrap().pivots));
    }
    group.finish();
}

fn bench_detection_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_detection_path");
    let bal = Balanced::new(1_000_000, 0.5).unwrap();
    let prof = bal.detection_profile();
    group.bench_function("closed_form_p_kp", |b| {
        b.iter(|| bal.p_nonasymptotic(3, 0.1).unwrap())
    });
    group.bench_function("generic_engine_p_kp", |b| {
        b.iter(|| prof.p_nonasymptotic(3, 0.1).unwrap().unwrap())
    });
    group.finish();
}

fn bench_lexicographic_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lexicographic");
    group.sample_size(20);
    // Sanity of the ablation claim: the refinement shrinks precompute at
    // equal assignment cost (m = 6: 1923 → ~320).
    let base = AssignmentMinimizing::solve(100_000, 0.5, 6).unwrap();
    let refined = AssignmentMinimizing::solve_min_precompute(100_000, 0.5, 6).unwrap();
    assert!(refined.precompute_required() < base.precompute_required());
    assert!((refined.objective() - base.objective()).abs() < 1.0);

    group.bench_function("single_stage_solve_m16", |b| {
        b.iter(|| {
            AssignmentMinimizing::solve(100_000, 0.5, 16)
                .unwrap()
                .objective()
        })
    });
    group.bench_function("min_precompute_solve_m16", |b| {
        b.iter(|| {
            AssignmentMinimizing::solve_min_precompute(100_000, 0.5, 16)
                .unwrap()
                .precompute_required()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pivot_rules,
    bench_detection_paths,
    bench_lexicographic_refinement
);
criterion_main!(benches);
