//! Benchmark for regenerating Figure 4 and the Section 6 examples:
//! realizing integer plans (floors, tail partition, ringer sizing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::RealizedPlan;

fn bench_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_plans");

    for &n in &[100_000u64, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("realize_balanced", n), &n, |b, &n| {
            b.iter(|| RealizedPlan::balanced(n, 0.75).unwrap().total_assignments())
        });
        group.bench_with_input(
            BenchmarkId::new("realize_golle_stubblebine", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    RealizedPlan::golle_stubblebine(n, 0.75)
                        .unwrap()
                        .total_assignments()
                })
            },
        );
    }

    group.bench_function("section6_extreme_case_n1e7_eps099", |b| {
        b.iter(|| {
            let plan = RealizedPlan::balanced(10_000_000, 0.99).unwrap();
            (plan.tail_tasks(), plan.ringer_tasks())
        })
    });

    group.bench_function("plan_effective_detection", |b| {
        let plan = RealizedPlan::balanced(1_000_000, 0.75).unwrap();
        b.iter(|| plan.effective_detection(0.1).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_plans);
criterion_main!(benches);
