//! Benchmark for regenerating Figure 2: the full `S_m` LP sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redundancy_core::AssignmentMinimizing;

fn bench_lp_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_lp");
    group.sample_size(20);

    for &dim in &[4usize, 8, 16, 26] {
        group.bench_with_input(BenchmarkId::new("solve_s_m", dim), &dim, |b, &dim| {
            b.iter(|| {
                AssignmentMinimizing::solve(100_000, 0.5, dim)
                    .unwrap()
                    .objective()
            })
        });
    }

    group.bench_function("full_sweep_2_to_26", |b| {
        b.iter(|| {
            AssignmentMinimizing::sweep(100_000, 0.5, 2..=26)
                .unwrap()
                .len()
        })
    });

    group.bench_function("figure2_row_with_detection_minima", |b| {
        b.iter(|| {
            let sol = AssignmentMinimizing::solve(100_000, 0.5, 16).unwrap();
            let prof = sol.verified_profile();
            [0.05, 0.10, 0.15]
                .iter()
                .map(|&p| prof.effective_detection(p).unwrap())
                .sum::<f64>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lp_sweep);
criterion_main!(benches);
