//! Benchmark for regenerating Figure 1: non-asymptotic detection curves
//! for the Balanced distribution and the `S₉` / `S₂₆` LP optima.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use redundancy_core::{AssignmentMinimizing, Balanced, Scheme};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.sample_size(20);

    group.bench_function("balanced_curve_21_points", |b| {
        let bal = Balanced::new(100_000, 0.5).unwrap();
        b.iter(|| {
            let mut acc = 0.0;
            for step in 0..=20 {
                let p = step as f64 * 0.025;
                acc += bal.p_nonasymptotic(1, p).unwrap();
            }
            acc
        })
    });

    group.bench_function("s9_effective_detection_curve", |b| {
        let s9 = AssignmentMinimizing::solve(100_000, 0.5, 9).unwrap();
        let prof = s9.verified_profile();
        b.iter(|| {
            let mut acc = 0.0;
            for step in 0..=20 {
                let p = step as f64 * 0.025;
                acc += prof.effective_detection(p).unwrap();
            }
            acc
        })
    });

    group.bench_function("s26_solve_plus_curve", |b| {
        b.iter_batched(
            || (),
            |_| {
                let s26 = AssignmentMinimizing::solve(1_000_000, 0.5, 26).unwrap();
                let prof = s26.verified_profile();
                prof.effective_detection(0.1).unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("generic_engine_balanced_profile", |b| {
        let bal = Balanced::new(100_000, 0.5).unwrap();
        let prof = bal.detection_profile();
        b.iter(|| prof.effective_detection(0.1).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
