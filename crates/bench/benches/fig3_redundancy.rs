//! Benchmark for regenerating Figure 3: redundancy-factor curves across ε.

use criterion::{criterion_group, criterion_main, Criterion};
use redundancy_core::{bounds, Balanced, GolleStubblebine, Scheme};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");

    group.bench_function("closed_form_curves_19_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..20 {
                let eps = i as f64 * 0.05;
                acc += Balanced::factor_for_threshold(eps).unwrap();
                acc += GolleStubblebine::factor_for_threshold(eps).unwrap();
                acc += bounds::lower_bound_factor(eps).unwrap();
            }
            acc
        })
    });

    group.bench_function("balanced_break_even_bisection", |b| {
        b.iter(Balanced::break_even_with_simple)
    });

    group.bench_function("materialize_balanced_distribution_n1e6", |b| {
        let bal = Balanced::new(1_000_000, 0.5).unwrap();
        b.iter(|| bal.distribution().total_assignments())
    });

    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
