#![warn(missing_docs)]

//! # redundancy-json — a small, dependency-free JSON layer
//!
//! The workspace exports plans and simulation histories as JSON and reads
//! them back; it used to lean on `serde`/`serde_json` for that, which made
//! the whole build hostage to a crate registry.  Everything actually
//! needed here is far smaller: a [`Json`] value model, a strict
//! RFC 8259 parser, compact and pretty writers, and a pair of traits
//! ([`ToJson`]/[`FromJson`]) with hand-written impls on the handful of
//! exported types.
//!
//! Numbers are stored as `f64` (as in JavaScript); integer round-trips are
//! exact up to 2⁵³, far beyond any task count the paper contemplates.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Required object member, as an error-carrying lookup.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::Schema(format!("missing field `{key}`")))
    }

    /// Required `u64` member.
    pub fn field_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| JsonError::Schema(format!("field `{key}` is not a u64")))
    }

    /// Required `f64` member.
    pub fn field_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::Schema(format!("field `{key}` is not a number")))
    }

    /// Required string member.
    pub fn field_str(&self, key: &str) -> Result<&str, JsonError> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| JsonError::Schema(format!("field `{key}` is not a string")))
    }

    /// Required array member.
    pub fn field_arr(&self, key: &str) -> Result<&[Json], JsonError> {
        self.field(key)?
            .as_arr()
            .ok_or_else(|| JsonError::Schema(format!("field `{key}` is not an array")))
    }
}

/// Build an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A `u64` as a JSON number.
pub fn num_u64(x: u64) -> Json {
    Json::Num(x as f64)
}

/// Parsing / schema errors.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Malformed JSON text at a byte offset.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Well-formed JSON that does not match the expected shape.
    Schema(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "json parse error at byte {offset}: {message}")
            }
            JsonError::Schema(m) => write!(f, "json schema error: {m}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types reconstructible from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: ToJson>(value: &T) -> String {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    out
}

/// Serialize a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    out
}

/// Parse JSON text into a typed value.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Parse JSON text into a [`Json`] value, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // Called with `peek() == Some(b'u')`.
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require \uXXXX low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("invalid code point"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(x: f64, out: &mut String) {
    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", x as i64));
    } else {
        // `{:?}` (shortest round-trippable form) keeps f64 fidelity.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => write_number(*x, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Json, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    let close_pad = "  ".repeat(depth);
    match value {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Json::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// Convenience impls for generic containers used across the workspace.

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        num_u64(*self)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_u64()
            .ok_or_else(|| JsonError::Schema("expected a u64".into()))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::Schema("expected a number".into()))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_arr()
            .ok_or_else(|| JsonError::Schema("expected an array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "1e3", "\"hi\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_compact(&v, &mut out);
            assert_eq!(parse(&out).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny", "d": true}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.field_arr("a").unwrap().len(), 3);
        assert_eq!(v.field_str("c").unwrap(), "x\ny");
        let compact = {
            let mut s = String::new();
            write_compact(&v, &mut s);
            s
        };
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_pretty(&v, 0, &mut s);
            s
        };
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "tru", "{\"a\" 1}", "1 2", "\"\\q\"", "nul"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn f64_fidelity() {
        let x = 0.1 + 0.2;
        let v = Json::Num(x);
        let mut out = String::new();
        write_compact(&v, &mut out);
        assert_eq!(parse(&out).unwrap().as_f64().unwrap(), x);
    }

    #[test]
    fn u64_bounds() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn field_helpers_report_missing() {
        let v = parse(r#"{"a": 1}"#).unwrap();
        assert!(v.field("b").is_err());
        assert!(v.field_u64("a").is_ok());
        assert!(v.field_str("a").is_err());
    }

    #[test]
    fn vec_round_trip_via_traits() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let text = to_string(&xs);
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
